(* Unit and property tests for the DSP substrate. *)

open Nimbus_dsp

let pi = 4.0 *. atan 1.0

let check_close ?(eps = 1e-9) msg expected actual =
  if Float.abs (expected -. actual) > eps then
    Alcotest.failf "%s: expected %.12g, got %.12g" msg expected actual

let check_rel ?(tol = 1e-6) msg expected actual =
  let denom = Float.max 1e-12 (Float.abs expected) in
  if Float.abs (expected -. actual) /. denom > tol then
    Alcotest.failf "%s: expected %.12g, got %.12g" msg expected actual

let sinusoid ~n ~sample_rate ~freq ~amp ~phase =
  Array.init n (fun i ->
      amp *. sin ((2. *. pi *. freq *. float_of_int i /. sample_rate) +. phase))

let max_diff a b =
  let d = ref 0. in
  for i = 0 to Cbuf.length a - 1 do
    let ar, ai = Cbuf.get a i and br, bi = Cbuf.get b i in
    d := Float.max !d (Float.max (Float.abs (ar -. br)) (Float.abs (ai -. bi)))
  done;
  !d

(* --- cbuf ---------------------------------------------------------------- *)

let test_cbuf_basics () =
  let b = Cbuf.create 4 in
  Alcotest.(check int) "length" 4 (Cbuf.length b);
  Cbuf.set b 2 3. (-4.);
  check_close "magnitude" 5. (Cbuf.magnitude b 2);
  Cbuf.mul b 2 0. 1.;
  let re, im = Cbuf.get b 2 in
  check_close "mul rotates re" 4. re;
  check_close "mul rotates im" 3. im;
  Cbuf.scale b 2.;
  check_close "scale" 8. (fst (Cbuf.get b 2))

let test_cbuf_of_real () =
  let b = Cbuf.of_real [| 1.; 2.; 3. |] in
  Alcotest.(check int) "length" 3 (Cbuf.length b);
  check_close "re" 2. (fst (Cbuf.get b 1));
  check_close "im" 0. (snd (Cbuf.get b 1))

let test_cbuf_blit () =
  let a = Cbuf.of_real [| 1.; 2.; 3.; 4. |] in
  let b = Cbuf.create 4 in
  Cbuf.blit ~src:a ~src_pos:1 ~dst:b ~dst_pos:0 ~len:2;
  check_close "blit" 2. (fst (Cbuf.get b 0));
  check_close "blit" 3. (fst (Cbuf.get b 1))

(* --- fft ----------------------------------------------------------------- *)

let test_power_of_two () =
  Alcotest.(check bool) "1" true (Fft.is_power_of_two 1);
  Alcotest.(check bool) "512" true (Fft.is_power_of_two 512);
  Alcotest.(check bool) "500" false (Fft.is_power_of_two 500);
  Alcotest.(check bool) "0" false (Fft.is_power_of_two 0);
  Alcotest.(check int) "next 500" 512 (Fft.next_power_of_two 500);
  Alcotest.(check int) "next 512" 512 (Fft.next_power_of_two 512);
  Alcotest.(check int) "next 1" 1 (Fft.next_power_of_two 1)

let test_next_power_of_two_bounds () =
  (* non-positive inputs round up to 2^0 *)
  Alcotest.(check int) "next 0" 1 (Fft.next_power_of_two 0);
  Alcotest.(check int) "next -17" 1 (Fft.next_power_of_two (-17));
  (* the largest representable power of two is its own ceiling... *)
  Alcotest.(check int) "next max" Fft.max_power_of_two
    (Fft.next_power_of_two Fft.max_power_of_two);
  Alcotest.(check int) "next max-1" Fft.max_power_of_two
    (Fft.next_power_of_two (Fft.max_power_of_two - 1));
  (* ...and anything beyond it has none *)
  let overflow = Invalid_argument
      "Fft.next_power_of_two: no representable power of two >= n"
  in
  Alcotest.check_raises "next max+1" overflow (fun () ->
      ignore (Fft.next_power_of_two (Fft.max_power_of_two + 1)));
  Alcotest.check_raises "next max_int" overflow (fun () ->
      ignore (Fft.next_power_of_two max_int))

let test_fft_impulse () =
  (* delta function -> flat spectrum of magnitude 1 *)
  let b = Cbuf.create 16 in
  Cbuf.set b 0 1. 0.;
  Fft.radix2 b;
  for k = 0 to 15 do
    check_close "impulse bin" 1. (Cbuf.magnitude b k)
  done

let test_fft_dc () =
  let b = Cbuf.of_real (Array.make 8 3.) in
  Fft.radix2 b;
  check_close "dc bin" 24. (Cbuf.magnitude b 0);
  for k = 1 to 7 do
    check_close ~eps:1e-9 "non-dc bin" 0. (Cbuf.magnitude b k)
  done

let test_fft_sinusoid_bin () =
  (* exact-bin sinusoid of amplitude a -> |X(k)| = n*a/2 *)
  let n = 64 in
  let xs = sinusoid ~n ~sample_rate:64. ~freq:8. ~amp:2. ~phase:0.3 in
  let b = Cbuf.of_real xs in
  Fft.radix2 b;
  check_rel ~tol:1e-9 "peak bin" (float_of_int n *. 2. /. 2.) (Cbuf.magnitude b 8);
  check_close ~eps:1e-8 "other bin" 0. (Cbuf.magnitude b 9)

let test_radix2_matches_dft () =
  let rng = Nimbus_sim.Rng.create 99 in
  let b = Cbuf.create 64 in
  for i = 0 to 63 do
    Cbuf.set b i (Nimbus_sim.Rng.uniform rng) (Nimbus_sim.Rng.uniform rng)
  done;
  let oracle = Fft.dft b in
  let fast = Cbuf.copy b in
  Fft.radix2 fast;
  if max_diff oracle fast > 1e-8 then Alcotest.fail "radix2 deviates from DFT"

let test_bluestein_matches_dft () =
  List.iter
    (fun n ->
      let rng = Nimbus_sim.Rng.create (1000 + n) in
      let b = Cbuf.create n in
      for i = 0 to n - 1 do
        Cbuf.set b i (Nimbus_sim.Rng.uniform rng) (Nimbus_sim.Rng.uniform rng)
      done;
      let oracle = Fft.dft b in
      let fast = Fft.bluestein b in
      if max_diff oracle fast > 1e-7 then
        Alcotest.failf "bluestein deviates from DFT at n=%d" n)
    [ 1; 2; 3; 5; 7; 12; 100; 500 ]

let test_inverse_roundtrip () =
  List.iter
    (fun n ->
      let rng = Nimbus_sim.Rng.create (2000 + n) in
      let b = Cbuf.create n in
      for i = 0 to n - 1 do
        Cbuf.set b i
          (Nimbus_sim.Rng.range rng ~lo:(-5.) ~hi:5.)
          (Nimbus_sim.Rng.range rng ~lo:(-5.) ~hi:5.)
      done;
      let fwd = Fft.transform b in
      let back = Fft.transform ~inverse:true fwd in
      if max_diff b back > 1e-8 then Alcotest.failf "roundtrip fails at n=%d" n)
    [ 8; 17; 500; 512 ]

let test_plan_matches_dft () =
  List.iter
    (fun n ->
      let rng = Nimbus_sim.Rng.create (3000 + n) in
      let b = Cbuf.create n in
      for i = 0 to n - 1 do
        Cbuf.set b i (Nimbus_sim.Rng.uniform rng) (Nimbus_sim.Rng.uniform rng)
      done;
      let oracle = Fft.dft b in
      let plan = Fft.Plan.create n in
      Alcotest.(check int) "plan size" n (Fft.Plan.size plan);
      let fwd = Cbuf.copy b in
      Fft.Plan.execute plan fwd;
      if max_diff oracle fwd > 1e-7 then
        Alcotest.failf "plan deviates from DFT at n=%d" n;
      (* executing the same plan again must give the same answer: the plan's
         scratch state carries nothing across calls *)
      let again = Cbuf.copy b in
      Fft.Plan.execute plan again;
      if max_diff fwd again > 0. then
        Alcotest.failf "plan not reusable at n=%d" n;
      Fft.Plan.execute ~inverse:true plan again;
      if max_diff b again > 1e-8 then
        Alcotest.failf "plan roundtrip fails at n=%d" n)
    [ 1; 2; 3; 5; 7; 12; 100; 500; 512 ]

let test_plan_validation () =
  Alcotest.check_raises "create 0"
    (Invalid_argument "Fft.Plan.create: size must be positive") (fun () ->
      ignore (Fft.Plan.create 0));
  Alcotest.check_raises "length mismatch"
    (Invalid_argument "Fft.Plan.execute: buffer length does not match plan size")
    (fun () -> Fft.Plan.execute (Fft.Plan.create 8) (Cbuf.create 9))

(* the core kernel-agreement property of the plan layer: dft, bluestein and
   plan execute agree on any length; radix2 joins in on powers of two *)
let prop_kernels_agree =
  QCheck.Test.make ~count:60 ~name:"fft: dft = bluestein = plan (any n)"
    QCheck.(pair (int_range 1 128) (int_range 0 10_000))
    (fun (n, seed) ->
      let rng = Nimbus_sim.Rng.create seed in
      let b = Cbuf.create n in
      for i = 0 to n - 1 do
        Cbuf.set b i
          (Nimbus_sim.Rng.range rng ~lo:(-1.) ~hi:1.)
          (Nimbus_sim.Rng.range rng ~lo:(-1.) ~hi:1.)
      done;
      let tol = 1e-9 *. float_of_int n in
      let oracle = Fft.dft b in
      let via_bluestein = Fft.bluestein b in
      let via_plan = Cbuf.copy b in
      Fft.Plan.execute (Fft.Plan.create n) via_plan;
      let radix2_ok =
        if Fft.is_power_of_two n then begin
          let via_radix2 = Cbuf.copy b in
          Fft.radix2 via_radix2;
          max_diff oracle via_radix2 < tol
        end
        else true
      in
      max_diff oracle via_bluestein < tol
      && max_diff oracle via_plan < tol
      && radix2_ok)

let prop_kernels_agree_pow2 =
  QCheck.Test.make ~count:30 ~name:"fft: dft = radix2 = plan (power of two)"
    QCheck.(pair (int_range 0 7) (int_range 0 10_000))
    (fun (log2, seed) ->
      let n = 1 lsl log2 in
      let rng = Nimbus_sim.Rng.create seed in
      let b = Cbuf.create n in
      for i = 0 to n - 1 do
        Cbuf.set b i
          (Nimbus_sim.Rng.range rng ~lo:(-1.) ~hi:1.)
          (Nimbus_sim.Rng.range rng ~lo:(-1.) ~hi:1.)
      done;
      let tol = 1e-9 *. float_of_int (max n 1) in
      let oracle = Fft.dft b in
      let via_radix2 = Cbuf.copy b in
      Fft.radix2 via_radix2;
      let via_plan = Cbuf.copy b in
      Fft.Plan.execute (Fft.Plan.create n) via_plan;
      max_diff oracle via_radix2 < tol && max_diff oracle via_plan < tol)

let test_parseval () =
  let n = 128 in
  let rng = Nimbus_sim.Rng.create 7 in
  let xs = Array.init n (fun _ -> Nimbus_sim.Rng.range rng ~lo:(-1.) ~hi:1.) in
  let time_energy = Array.fold_left (fun a x -> a +. (x *. x)) 0. xs in
  let spec = Fft.transform (Cbuf.of_real xs) in
  let freq_energy = ref 0. in
  for k = 0 to n - 1 do
    let m = Cbuf.magnitude spec k in
    freq_energy := !freq_energy +. (m *. m)
  done;
  check_rel ~tol:1e-9 "parseval" time_energy (!freq_energy /. float_of_int n)

let test_real_amplitudes_length () =
  Alcotest.(check int) "n/2+1 odd" 251 (Array.length (Fft.real_amplitudes (Array.make 500 0.)));
  Alcotest.(check int) "n/2+1 even" 257 (Array.length (Fft.real_amplitudes (Array.make 512 0.)));
  Alcotest.(check int) "empty" 0 (Array.length (Fft.real_amplitudes [||]))

let prop_fft_linearity =
  QCheck.Test.make ~count:50 ~name:"fft: transform is linear"
    QCheck.(pair (list_of_size (Gen.return 32) (float_bound_exclusive 10.)) (list_of_size (Gen.return 32) (float_bound_exclusive 10.)))
    (fun (a, b) ->
      let a = Array.of_list a and b = Array.of_list b in
      let sum = Array.map2 ( +. ) a b in
      let fa = Fft.transform (Cbuf.of_real a) in
      let fb = Fft.transform (Cbuf.of_real b) in
      let fsum = Fft.transform (Cbuf.of_real sum) in
      let ok = ref true in
      for k = 0 to 31 do
        let er = fa.Cbuf.re.(k) +. fb.Cbuf.re.(k) -. fsum.Cbuf.re.(k) in
        let ei = fa.Cbuf.im.(k) +. fb.Cbuf.im.(k) -. fsum.Cbuf.im.(k) in
        if Float.abs er > 1e-6 || Float.abs ei > 1e-6 then ok := false
      done;
      !ok)

let prop_bluestein_equals_radix2 =
  QCheck.Test.make ~count:30 ~name:"fft: bluestein = radix2 on powers of two"
    QCheck.(list_of_size (Gen.return 64) (float_bound_exclusive 100.))
    (fun xs ->
      let xs = Array.of_list xs in
      let a = Cbuf.of_real xs in
      let via_bluestein = Fft.bluestein a in
      let via_radix2 = Cbuf.copy a in
      Fft.radix2 via_radix2;
      max_diff via_bluestein via_radix2 < 1e-6)

(* --- goertzel ------------------------------------------------------------ *)

let test_goertzel_matches_fft () =
  let n = 500 in
  let xs = sinusoid ~n ~sample_rate:100. ~freq:5. ~amp:1.5 ~phase:0.7 in
  let g = Goertzel.magnitude xs ~sample_rate:(Units.Freq.hz 100.) ~freq:5. in
  let amps = Fft.real_amplitudes xs in
  (* bin 25 = 5 Hz at 100 Hz / 500 samples *)
  check_rel ~tol:1e-6 "goertzel vs fft" amps.(25) g

let test_goertzel_rejects_other_freq () =
  let xs = sinusoid ~n:500 ~sample_rate:100. ~freq:5. ~amp:1. ~phase:0. in
  let off = Goertzel.magnitude xs ~sample_rate:(Units.Freq.hz 100.) ~freq:17. in
  let on = Goertzel.magnitude xs ~sample_rate:(Units.Freq.hz 100.) ~freq:5. in
  if off > on /. 100. then Alcotest.fail "goertzel leaks across bins"

(* --- goertzel bank -------------------------------------------------------- *)

let bank_tapers =
  [| Window.Rectangular; Window.Hann; Window.Hamming; Window.Blackman |]

let bank_detrends : [ `None | `Mean | `Linear ] array =
  [| `None; `Mean; `Linear |]

(* Feed all of [xs] through a bank tracking every bin of a length-[n] DFT,
   then compare each amplitude with the Plan-FFT analyzer over the final
   window — the agreement contract behind the streaming η path. *)
let bank_matches_spectrum ~n ~taper ~detrend xs =
  let total = Array.length xs in
  let bins = Array.init ((n / 2) + 1) (fun k -> k) in
  let bank = Goertzel.Bank.create ~window:n ~taper ~detrend ~bins () in
  Array.iter (fun x -> Goertzel.Bank.push bank x) xs;
  let s =
    Spectrum.analyze ~window:taper ~detrend
      (Array.sub xs (total - n) n)
      ~sample_rate:(Units.Freq.hz 100.)
  in
  let scale = ref 1. in
  Array.iter (fun x -> if Float.abs x > !scale then scale := Float.abs x) xs;
  let tol = 1e-9 *. float_of_int n *. !scale in
  let ok = ref true in
  for k = 0 to n / 2 do
    let expect = Spectrum.amplitude_at s (Spectrum.freq_of_bin s k) in
    let got = Goertzel.Bank.amplitude bank k in
    if Float.abs (expect -. got) > tol then ok := false
  done;
  !ok

let prop_bank_matches_spectrum =
  QCheck.Test.make ~count:48
    ~name:"goertzel bank: amplitudes = spectrum across tapers/detrends"
    QCheck.(
      quad (int_range 16 80) (int_range 0 100_000) (int_range 0 3)
        (int_range 0 2))
    (fun (n, seed, ti, di) ->
      let rng = Nimbus_sim.Rng.create seed in
      (* the longest draws push past 8n and cross the periodic resync *)
      let total = n + Nimbus_sim.Rng.int rng (9 * n) in
      let xs =
        Array.init total (fun i ->
            let t = float_of_int i in
            (0.05 *. t) +. (3. *. sin (0.37 *. t))
            +. Nimbus_sim.Rng.range rng ~lo:(-1.) ~hi:1.)
      in
      bank_matches_spectrum ~n ~taper:bank_tapers.(ti)
        ~detrend:bank_detrends.(di) xs)

let test_bank_load_matches_push () =
  let n = 64 in
  let xs =
    Array.init n (fun i ->
        sin (0.3 *. float_of_int i) +. (0.01 *. float_of_int i))
  in
  let bins = [| 3; 7; 8 |] in
  let make () =
    Goertzel.Bank.create ~window:n ~taper:Window.Hann ~detrend:`Linear ~bins ()
  in
  let a = make () and b = make () in
  Goertzel.Bank.load a xs;
  Array.iter (fun x -> Goertzel.Bank.push b x) xs;
  Alcotest.(check bool) "both filled" true
    (Goertzel.Bank.filled a && Goertzel.Bank.filled b);
  for slot = 0 to 2 do
    Alcotest.(check int) "tracked bin" bins.(slot) (Goertzel.Bank.bin a slot);
    check_rel ~tol:1e-9 "load = push"
      (Goertzel.Bank.amplitude a slot)
      (Goertzel.Bank.amplitude b slot)
  done

let test_bank_resync_drift () =
  (* 20 windows of pushes cross the 8n resync twice; the recurrences must
     not have drifted away from the FFT path *)
  let n = 50 in
  let xs =
    Array.init (20 * n) (fun i ->
        let t = float_of_int i in
        (2. *. sin (0.63 *. t)) +. (0.02 *. t))
  in
  Alcotest.(check bool) "agrees after resyncs" true
    (bank_matches_spectrum ~n ~taper:Window.Blackman ~detrend:`Linear xs)

let test_bank_validation () =
  let raises name f =
    Alcotest.(check bool) name true
      (try
         ignore (f ());
         false
       with Invalid_argument _ -> true)
  in
  raises "bin beyond n/2" (fun () ->
      Goertzel.Bank.create ~window:8 ~taper:Window.Hann ~detrend:`Mean
        ~bins:[| 5 |] ());
  raises "negative bin" (fun () ->
      Goertzel.Bank.create ~window:8 ~taper:Window.Hann ~detrend:`Mean
        ~bins:[| -1 |] ());
  raises "load length" (fun () ->
      let b =
        Goertzel.Bank.create ~window:8 ~taper:Window.Hann ~detrend:`Mean
          ~bins:[| 1 |] ()
      in
      Goertzel.Bank.load b (Array.make 7 0.))

let test_goertzel_sliding () =
  let s = Goertzel.Sliding.create ~window:100 ~sample_rate:(Units.Freq.hz 100.) ~freq:5. in
  Alcotest.(check bool) "not filled" false (Goertzel.Sliding.filled s);
  for i = 0 to 199 do
    Goertzel.Sliding.push s (sin (2. *. pi *. 5. *. float_of_int i /. 100.))
  done;
  Alcotest.(check bool) "filled" true (Goertzel.Sliding.filled s);
  let m = Goertzel.Sliding.magnitude s in
  check_rel ~tol:1e-6 "sliding magnitude" 50. m

(* --- window -------------------------------------------------------------- *)

let test_window_endpoints () =
  let h = Window.coefficients Window.Hann 101 in
  check_close "hann starts at 0" 0. h.(0);
  check_close "hann ends at 0" 0. h.(100);
  check_close "hann peak" 1. h.(50);
  let r = Window.coefficients Window.Rectangular 5 in
  Array.iter (fun x -> check_close "rect" 1. x) r

let test_window_symmetry () =
  List.iter
    (fun kind ->
      let w = Window.coefficients kind 64 in
      for i = 0 to 31 do
        check_close ~eps:1e-12 "symmetric" w.(i) w.(63 - i)
      done)
    [ Window.Hann; Window.Hamming; Window.Blackman ]

let test_window_coherent_gain () =
  check_rel ~tol:0.02 "hann gain ~0.5" 0.5 (Window.coherent_gain Window.Hann 512);
  check_close "rect gain" 1. (Window.coherent_gain Window.Rectangular 512)

(* --- spectrum ------------------------------------------------------------ *)

let test_spectrum_bin_mapping () =
  let xs = Array.make 500 0. in
  let s = Spectrum.analyze xs ~sample_rate:(Units.Freq.hz 100.) in
  check_close "bin width" 0.2 (Spectrum.bin_width s);
  Alcotest.(check int) "bin of 5Hz" 25 (Spectrum.bin_of_freq s 5.);
  Alcotest.(check int) "clamp high" 250 (Spectrum.bin_of_freq s 1000.);
  Alcotest.(check int) "clamp low" 0 (Spectrum.bin_of_freq s (-3.));
  check_close "freq of bin" 5. (Spectrum.freq_of_bin s 25)

let test_spectrum_peak_and_band () =
  let xs = sinusoid ~n:500 ~sample_rate:100. ~freq:7. ~amp:1. ~phase:0. in
  let s = Spectrum.analyze xs ~sample_rate:(Units.Freq.hz 100.) in
  let f, a = Spectrum.dominant s ~above:0.5 in
  check_close "dominant freq" 7. f;
  check_rel ~tol:1e-6 "dominant amp" 250. a;
  check_rel ~tol:1e-6 "band max includes 7"
    250. (Spectrum.band_max s ~lo:6. ~hi:8.);
  check_close ~eps:1e-6 "band max excludes 7" 0.
    (Spectrum.band_max s ~lo:8. ~hi:10.)

let test_spectrum_detrend_linear () =
  (* a pure ramp should vanish almost entirely under linear detrending *)
  let xs = Array.init 500 (fun i -> 5e6 +. (1e4 *. float_of_int i)) in
  let mean_only = Spectrum.analyze ~detrend:`Mean xs ~sample_rate:(Units.Freq.hz 100.) in
  let linear = Spectrum.analyze ~detrend:`Linear xs ~sample_rate:(Units.Freq.hz 100.) in
  let low_mean = Spectrum.band_max mean_only ~lo:0.1 ~hi:10. in
  let low_linear = Spectrum.band_max linear ~lo:0.1 ~hi:10. in
  if low_linear > low_mean /. 100. then
    Alcotest.failf "linear detrend left %g vs %g" low_linear low_mean

let test_spectrum_rejects_bad_input () =
  Alcotest.check_raises "empty" (Invalid_argument "Spectrum.analyze: empty signal")
    (fun () -> ignore (Spectrum.analyze [||] ~sample_rate:(Units.Freq.hz 100.)));
  Alcotest.check_raises "bad rate"
    (Invalid_argument "Spectrum.analyze: sample_rate <= 0") (fun () ->
      ignore (Spectrum.analyze [| 1. |] ~sample_rate:(Units.Freq.hz 0.)))

let test_spectrum_state_matches_analyze () =
  let st =
    Spectrum.create_state ~window:Window.Hann ~detrend:`Linear ~n:500
      ~sample_rate:(Units.Freq.hz 100.) ()
  in
  Alcotest.(check int) "state size" 500 (Spectrum.state_size st);
  (* reuse the same state for two different signals; each result must match
     the one-shot analyze exactly *)
  List.iter
    (fun (freq, amp) ->
      let xs = sinusoid ~n:500 ~sample_rate:100. ~freq ~amp ~phase:0.4 in
      let fresh =
        Spectrum.analyze ~window:Window.Hann ~detrend:`Linear xs
          ~sample_rate:(Units.Freq.hz 100.)
      in
      let reused = Spectrum.analyze_into st xs in
      check_close "bin width" (Spectrum.bin_width fresh)
        (Spectrum.bin_width reused);
      for k = 0 to 250 do
        check_close ~eps:1e-12
          (Printf.sprintf "amplitude bin %d at %g Hz" k freq)
          (Spectrum.amplitude_at fresh (Spectrum.freq_of_bin fresh k))
          (Spectrum.amplitude_at reused (Spectrum.freq_of_bin reused k))
      done)
    [ (7., 1.); (23.4, 0.3) ]

let test_spectrum_state_validation () =
  Alcotest.check_raises "n 0"
    (Invalid_argument "Spectrum.create_state: n <= 0") (fun () ->
      ignore
        (Spectrum.create_state ~n:0 ~sample_rate:(Units.Freq.hz 100.) ()));
  Alcotest.check_raises "bad rate"
    (Invalid_argument "Spectrum.create_state: sample_rate <= 0") (fun () ->
      ignore
        (Spectrum.create_state ~n:8 ~sample_rate:(Units.Freq.hz 0.) ()));
  let st = Spectrum.create_state ~n:8 ~sample_rate:(Units.Freq.hz 100.) () in
  Alcotest.check_raises "length mismatch"
    (Invalid_argument "Spectrum.analyze_into: signal length <> state size")
    (fun () -> ignore (Spectrum.analyze_into st (Array.make 9 0.)))

(* --- ewma ---------------------------------------------------------------- *)

let test_ewma_first_sample () =
  let e = Ewma.create ~alpha:0.3 in
  Alcotest.(check bool) "uninit" false (Ewma.initialized e);
  check_close "first" 10. (Ewma.update e 10.);
  Alcotest.(check bool) "init" true (Ewma.initialized e)

let test_ewma_convergence () =
  let e = Ewma.create ~alpha:0.5 in
  for _ = 1 to 60 do
    ignore (Ewma.update e 42.)
  done;
  check_rel ~tol:1e-9 "converges" 42. (Ewma.value e)

let test_ewma_reset () =
  let e = Ewma.create ~alpha:0.5 in
  ignore (Ewma.update e 10.);
  Ewma.reset e;
  Alcotest.(check bool) "reset" false (Ewma.initialized e);
  check_close "zero" 0. (Ewma.value e)

let test_ewma_time_constant () =
  (* after tau seconds the response to a step reaches 1 - 1/e *)
  let dt = 0.01 and tau = 0.5 in
  let e = Ewma.create_time_constant ~tau ~dt in
  ignore (Ewma.update e 0.);
  let steps = int_of_float (tau /. dt) in
  for _ = 1 to steps do
    ignore (Ewma.update e 1.)
  done;
  check_rel ~tol:0.05 "step response at tau" (1. -. exp (-1.)) (Ewma.value e)

let test_ewma_invalid () =
  Alcotest.check_raises "alpha 0" (Invalid_argument "Ewma.create: alpha not in (0,1]")
    (fun () -> ignore (Ewma.create ~alpha:0.))

(* --- stats --------------------------------------------------------------- *)

let test_percentiles () =
  let xs = [| 1.; 2.; 3.; 4.; 5. |] in
  check_close "p0" 1. (Stats.percentile xs 0.);
  check_close "p50" 3. (Stats.percentile xs 50.);
  check_close "p100" 5. (Stats.percentile xs 100.);
  check_close "p25 interp" 2. (Stats.percentile xs 25.);
  check_close "median" 3. (Stats.median xs)

let test_mean_variance () =
  let xs = [| 2.; 4.; 4.; 4.; 5.; 5.; 7.; 9. |] in
  check_close "mean" 5. (Stats.mean xs);
  check_close "variance" 4. (Stats.variance xs);
  check_close "stddev" 2. (Stats.stddev xs)

let test_correlation () =
  let a = [| 1.; 2.; 3.; 4. |] in
  let b = [| 2.; 4.; 6.; 8. |] in
  let c = [| 8.; 6.; 4.; 2. |] in
  check_close "corr +1" 1. (Stats.correlation a b);
  check_close "corr -1" (-1.) (Stats.correlation a c)

let test_cross_correlation_lag () =
  (* y is x delayed by 3 samples: peak correlation at lag 3 *)
  let n = 200 in
  let rng = Nimbus_sim.Rng.create 4 in
  let x = Array.init n (fun _ -> Nimbus_sim.Rng.uniform rng) in
  let y = Array.init n (fun i -> if i < 3 then 0. else x.(i - 3)) in
  let corr = Stats.cross_correlation x y ~max_lag:6 in
  let best = ref 0 in
  Array.iteri (fun i c -> if c > corr.(!best) then best := i) corr;
  Alcotest.(check int) "lag found" 3 !best

let test_cdf_points () =
  let xs = [| 1.; 2.; 3.; 4. |] in
  let pts = Stats.cdf_points xs ~points:4 in
  Alcotest.(check int) "count" 4 (Array.length pts);
  let v, p = pts.(3) in
  check_close "last value" 4. v;
  check_close "last prob" 1. p

let test_relative_error () =
  check_close "exact" 0. (Stats.relative_error ~actual:5. ~expected:5.);
  check_close "50%" 0.5 (Stats.relative_error ~actual:5. ~expected:10.);
  Alcotest.(check bool) "zero expected" true
    (Stats.relative_error ~actual:1. ~expected:0. = infinity)

let prop_percentile_within_range =
  QCheck.Test.make ~count:100 ~name:"stats: percentile stays within min/max"
    QCheck.(pair (list_of_size Gen.(int_range 1 50) (float_bound_exclusive 1000.)) (float_bound_inclusive 100.))
    (fun (xs, p) ->
      let xs = Array.of_list xs in
      let v = Stats.percentile xs p in
      v >= Stats.minimum xs -. 1e-9 && v <= Stats.maximum xs +. 1e-9)

(* --- ring ---------------------------------------------------------------- *)

let test_ring_fifo () =
  let r = Ring.create 3 in
  Ring.push r 1.;
  Ring.push r 2.;
  Alcotest.(check bool) "not full" false (Ring.is_full r);
  Ring.push r 3.;
  Ring.push r 4.;
  Alcotest.(check bool) "full" true (Ring.is_full r);
  Alcotest.(check (array (float 0.))) "evicts oldest" [| 2.; 3.; 4. |]
    (Ring.to_array r);
  check_close "last" 4. (Ring.last r);
  check_close "nth 0" 4. (Ring.nth_from_end r 0);
  check_close "nth 2" 2. (Ring.nth_from_end r 2)

let test_ring_clear_fold () =
  let r = Ring.create 4 in
  List.iter (Ring.push r) [ 1.; 2.; 3. ];
  check_close "fold sum" 6. (Ring.fold r ~init:0. ~f:( +. ));
  Ring.clear r;
  Alcotest.(check int) "cleared" 0 (Ring.count r)

let test_ring_blit_to () =
  let r = Ring.create 3 in
  (* force wrap-around: oldest-to-newest order must survive the seam *)
  List.iter (Ring.push r) [ 1.; 2.; 3.; 4.; 5. ];
  let dst = Array.make 4 0. in
  Ring.blit_to r dst;
  Alcotest.(check (array (float 0.))) "wrapped blit" [| 3.; 4.; 5.; 0. |] dst;
  Alcotest.check_raises "short dst"
    (Invalid_argument "Ring.blit_to: dst too small") (fun () ->
      Ring.blit_to r (Array.make 2 0.))

let test_ring_sum () =
  let r = Ring.create 3 in
  check_close "empty sum" 0. (Ring.sum r);
  List.iter (Ring.push r) [ 1.; 2.; 3.; 4.; 5. ];
  (* only the surviving window counts *)
  check_close "wrapped sum" 12. (Ring.sum r)

let prop_ring_keeps_last_n =
  QCheck.Test.make ~count:100 ~name:"ring: to_array = last n pushes"
    QCheck.(pair (int_range 1 20) (list_of_size Gen.(int_range 0 100) (float_bound_exclusive 100.)))
    (fun (cap, xs) ->
      let r = Ring.create cap in
      List.iter (Ring.push r) xs;
      let expected =
        let n = List.length xs in
        let keep = min cap n in
        Array.of_list (List.filteri (fun i _ -> i >= n - keep) xs)
      in
      Ring.to_array r = expected)

let qtest = QCheck_alcotest.to_alcotest

let suite =
  [ ( "dsp.cbuf",
      [ Alcotest.test_case "basics" `Quick test_cbuf_basics;
        Alcotest.test_case "of_real" `Quick test_cbuf_of_real;
        Alcotest.test_case "blit" `Quick test_cbuf_blit ] );
    ( "dsp.fft",
      [ Alcotest.test_case "power-of-two helpers" `Quick test_power_of_two;
        Alcotest.test_case "next_power_of_two bounds" `Quick
          test_next_power_of_two_bounds;
        Alcotest.test_case "impulse" `Quick test_fft_impulse;
        Alcotest.test_case "dc" `Quick test_fft_dc;
        Alcotest.test_case "sinusoid bin" `Quick test_fft_sinusoid_bin;
        Alcotest.test_case "radix2 = DFT" `Quick test_radix2_matches_dft;
        Alcotest.test_case "bluestein = DFT" `Quick test_bluestein_matches_dft;
        Alcotest.test_case "inverse roundtrip" `Quick test_inverse_roundtrip;
        Alcotest.test_case "plan = DFT + roundtrip" `Quick test_plan_matches_dft;
        Alcotest.test_case "plan validation" `Quick test_plan_validation;
        Alcotest.test_case "parseval" `Quick test_parseval;
        Alcotest.test_case "real_amplitudes length" `Quick
          test_real_amplitudes_length;
        qtest prop_fft_linearity;
        qtest prop_bluestein_equals_radix2;
        qtest prop_kernels_agree;
        qtest prop_kernels_agree_pow2 ] );
    ( "dsp.goertzel",
      [ Alcotest.test_case "matches fft bin" `Quick test_goertzel_matches_fft;
        Alcotest.test_case "rejects other freq" `Quick
          test_goertzel_rejects_other_freq;
        Alcotest.test_case "sliding window" `Quick test_goertzel_sliding;
        Alcotest.test_case "bank load = push" `Quick test_bank_load_matches_push;
        Alcotest.test_case "bank survives resyncs" `Quick
          test_bank_resync_drift;
        Alcotest.test_case "bank validation" `Quick test_bank_validation;
        qtest prop_bank_matches_spectrum ] );
    ( "dsp.window",
      [ Alcotest.test_case "endpoints" `Quick test_window_endpoints;
        Alcotest.test_case "symmetry" `Quick test_window_symmetry;
        Alcotest.test_case "coherent gain" `Quick test_window_coherent_gain ] );
    ( "dsp.spectrum",
      [ Alcotest.test_case "bin mapping" `Quick test_spectrum_bin_mapping;
        Alcotest.test_case "peak and band" `Quick test_spectrum_peak_and_band;
        Alcotest.test_case "linear detrend" `Quick test_spectrum_detrend_linear;
        Alcotest.test_case "input validation" `Quick
          test_spectrum_rejects_bad_input;
        Alcotest.test_case "reusable state = analyze" `Quick
          test_spectrum_state_matches_analyze;
        Alcotest.test_case "state validation" `Quick
          test_spectrum_state_validation ] );
    ( "dsp.ewma",
      [ Alcotest.test_case "first sample" `Quick test_ewma_first_sample;
        Alcotest.test_case "convergence" `Quick test_ewma_convergence;
        Alcotest.test_case "reset" `Quick test_ewma_reset;
        Alcotest.test_case "time constant" `Quick test_ewma_time_constant;
        Alcotest.test_case "invalid alpha" `Quick test_ewma_invalid ] );
    ( "dsp.stats",
      [ Alcotest.test_case "percentiles" `Quick test_percentiles;
        Alcotest.test_case "mean/variance" `Quick test_mean_variance;
        Alcotest.test_case "correlation" `Quick test_correlation;
        Alcotest.test_case "cross-correlation lag" `Quick
          test_cross_correlation_lag;
        Alcotest.test_case "cdf points" `Quick test_cdf_points;
        Alcotest.test_case "relative error" `Quick test_relative_error;
        qtest prop_percentile_within_range ] );
    ( "dsp.ring",
      [ Alcotest.test_case "fifo" `Quick test_ring_fifo;
        Alcotest.test_case "clear/fold" `Quick test_ring_clear_fold;
        Alcotest.test_case "blit_to" `Quick test_ring_blit_to;
        Alcotest.test_case "sum" `Quick test_ring_sum;
        qtest prop_ring_keeps_last_n ] ) ]
