(* Tests for the experiment harness plumbing: tables, the registry, and the
   cheap analytic experiments (the heavyweight ones run in bench/main.exe). *)

module E = Nimbus_experiments
module Time = Units.Time
module Rate = Units.Rate

let test_table_render () =
  let t =
    E.Table.make ~title:"demo" ~header:[ "a"; "bee" ]
      ~notes:[ "a note" ]
      [ [ "1"; "2" ]; [ "333"; "4" ] ]
  in
  let out = E.Table.render t in
  Alcotest.(check bool) "has title" true
    (String.length out > 0
    && String.sub out 0 7 = "== demo");
  let contains hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "has note" true (contains out "a note")

let test_table_csv () =
  let t =
    E.Table.make ~title:"x" ~header:[ "a"; "b" ] [ [ "1"; "with,comma" ] ]
  in
  Alcotest.(check string) "csv quoting" "a,b\n1,\"with,comma\"\n"
    (E.Table.to_csv t)

let test_table_formatters () =
  Alcotest.(check string) "mbps" "48.0" (E.Table.fmt_mbps 48e6);
  Alcotest.(check string) "ms" "12.5" (E.Table.fmt_ms 0.0125);
  Alcotest.(check string) "pct" "75%" (E.Table.fmt_pct 0.75);
  Alcotest.(check string) "nan" "-" (E.Table.fmt_mbps nan)

let test_registry_unique_ids () =
  let ids = E.Registry.ids in
  let sorted = List.sort_uniq compare ids in
  Alcotest.(check int) "no duplicate ids" (List.length ids)
    (List.length sorted);
  Alcotest.(check bool) "covers the paper" true (List.length ids >= 20)

let test_registry_find () =
  Alcotest.(check bool) "finds fig1" true (E.Registry.find "fig1" <> None);
  Alcotest.(check bool) "rejects junk" true (E.Registry.find "nope" = None)

let test_fig7_analytic () =
  (* fig7 is purely analytic, so run it end to end *)
  match E.Registry.find "fig7" with
  | None -> Alcotest.fail "fig7 missing"
  | Some e ->
    let tables = e.E.Registry.run E.Common.quick in
    Alcotest.(check int) "one table" 1 (List.length tables)

let test_common_link () =
  let l = E.Common.link ~mbps:96. ~rtt_ms:50. () in
  Alcotest.(check (float 0.001)) "mu" 96e6 (Rate.to_bps l.E.Common.mu);
  Alcotest.(check (float 1e-9)) "rtt" 0.05 (Time.to_secs l.E.Common.prop_rtt);
  let bn = (E.Common.setup ~seed:1 l).E.Common.bottleneck in
  (* 2 BDP of buffer at 96 Mbit/s x 50 ms = 1.2 MB *)
  Alcotest.(check int) "buffer bytes" 1_200_000
    (Nimbus_sim.Bottleneck.capacity_bytes bn)

let test_common_profiles () =
  Alcotest.(check bool) "quick shrinks" true
    (E.Common.scaled E.Common.quick 100. < 100.);
  Alcotest.(check (float 1e-9)) "full preserves" 100.
    (E.Common.scaled E.Common.full 100.);
  Alcotest.(check (float 1e-9)) "floor at 20s" 20.
    (E.Common.scaled E.Common.quick 30.)

let test_scheme_start () =
  let l = E.Common.link ~mbps:24. ~rtt_ms:50. () in
  let net = E.Common.setup ~seed:2 l in
  let engine = net.E.Common.engine in
  let r = (E.Common.nimbus ()).E.Common.start_flow net () in
  Alcotest.(check bool) "nimbus exposes mode" true
    (r.E.Common.in_competitive <> None);
  let r2 = E.Common.cubic.E.Common.start_flow net () in
  Alcotest.(check bool) "cubic has no mode" true
    (r2.E.Common.in_competitive = None);
  Nimbus_sim.Engine.run_until engine (Time.secs 5.);
  Alcotest.(check bool) "flows actually run" true
    (Nimbus_cc.Flow.received_bytes r.E.Common.flow > 0
    && Nimbus_cc.Flow.received_bytes r2.E.Common.flow > 0)

let suite =
  [ ( "experiments.table",
      [ Alcotest.test_case "render" `Quick test_table_render;
        Alcotest.test_case "csv" `Quick test_table_csv;
        Alcotest.test_case "formatters" `Quick test_table_formatters ] );
    ( "experiments.registry",
      [ Alcotest.test_case "unique ids" `Quick test_registry_unique_ids;
        Alcotest.test_case "find" `Quick test_registry_find;
        Alcotest.test_case "fig7 runs" `Quick test_fig7_analytic ] );
    ( "experiments.common",
      [ Alcotest.test_case "link" `Quick test_common_link;
        Alcotest.test_case "profiles" `Quick test_common_profiles;
        Alcotest.test_case "scheme start" `Quick test_scheme_start ] ) ]
