(* Tests for the fleet sweep stack: the streaming estimators (Welford, P²),
   the Stats empty/all-NaN guards, the Path_model population, checkpoint
   round-trips and corrupt-trailer recovery, and the headline robustness
   property — a sweep interrupted mid-run and resumed from its checkpoint
   produces byte-identical tables to an uninterrupted run, at any pool
   size.  Sim-heavy cases use cheap schemes (cubic/vegas) so the suite
   stays fast. *)

module E = Nimbus_experiments
module Sweep = E.Sweep
module Path_model = E.Path_model
module Stats = Nimbus_dsp.Stats
module Rng = Nimbus_sim.Rng
module Pool = Nimbus_parallel.Pool

let qtest = QCheck_alcotest.to_alcotest

(* --- stats guards (satellite 1) ------------------------------------------- *)

let test_stats_guards () =
  Alcotest.check_raises "percentile []" (Invalid_argument
    "Stats.percentile: empty input") (fun () ->
      ignore (Stats.percentile [||] 50.));
  Alcotest.check_raises "percentile all-NaN" (Invalid_argument
    "Stats.percentile: all-NaN input") (fun () ->
      ignore (Stats.percentile [| nan; nan |] 50.));
  Alcotest.(check int) "cdf_points []" 0
    (Array.length (Stats.cdf_points [||] ~points:5));
  Alcotest.(check int) "cdf_points all-NaN" 0
    (Array.length (Stats.cdf_points [| nan |] ~points:5));
  Alcotest.(check (float 1e-9)) "mean skips NaN" 2.
    (Stats.mean [| 1.; nan; 3. |]);
  Alcotest.(check (float 1e-9)) "percentile skips NaN" 2.
    (Stats.percentile [| 1.; nan; 3. |] 50.)

(* --- Welford --------------------------------------------------------------- *)

let qcheck_welford =
  QCheck.Test.make ~count:100 ~name:"sweep: Welford = exact mean/variance"
    QCheck.(list_of_size Gen.(int_range 2 50) (float_bound_exclusive 1000.))
    (fun xs ->
      let w = Stats.Welford.create () in
      List.iter (Stats.Welford.add w) xs;
      let a = Array.of_list xs in
      abs_float (Stats.Welford.mean w -. Stats.mean a) < 1e-6
      && abs_float (Stats.Welford.variance w -. Stats.variance a) < 1e-4)

let test_welford_empty () =
  let w = Stats.Welford.create () in
  Alcotest.(check int) "count" 0 (Stats.Welford.count w);
  Alcotest.(check bool) "mean nan" true (Float.is_nan (Stats.Welford.mean w));
  Alcotest.check_raises "rejects nan" (Invalid_argument
    "Stats.Welford.add: non-finite sample") (fun () -> Stats.Welford.add w nan)

(* --- P² -------------------------------------------------------------------- *)

let test_p2_small_exact () =
  (* first five samples: quantile must equal the exact percentile *)
  let p2 = Stats.P2.create 0.5 in
  List.iter (Stats.P2.add p2) [ 9.; 1.; 5.; 3.; 7. ];
  Alcotest.(check (float 1e-9)) "median of 5" 5. (Stats.P2.quantile p2);
  let q = Stats.P2.create 0.9 in
  Alcotest.(check bool) "empty is nan" true (Float.is_nan (Stats.P2.quantile q));
  Stats.P2.add q 4.;
  Alcotest.(check (float 1e-9)) "one sample" 4. (Stats.P2.quantile q)

(* P² on a large uniform stream tracks the exact batch percentile.  Draws
   come from the repo's splitmix RNG keyed by the qcheck-generated seed, so
   shrinking stays meaningful. *)
let qcheck_p2_uniform =
  QCheck.Test.make ~count:30 ~name:"sweep: P2 ~ exact percentile (uniform)"
    QCheck.(pair (int_range 0 10_000) (oneofl [ 0.1; 0.5; 0.9; 0.95 ]))
    (fun (seed, p) ->
      let rng = Rng.create seed in
      let n = 2000 in
      let xs = Array.init n (fun _ -> Rng.uniform rng) in
      let p2 = Stats.P2.create p in
      Array.iter (Stats.P2.add p2) xs;
      abs_float (Stats.P2.quantile p2 -. Stats.percentile xs (p *. 100.))
      < 0.03)

let qcheck_p2_bimodal =
  QCheck.Test.make ~count:20 ~name:"sweep: P2 ~ exact percentile (bimodal)"
    QCheck.(int_range 0 10_000)
    (fun seed ->
      let rng = Rng.create seed in
      let n = 3000 in
      let xs =
        Array.init n (fun _ ->
            if Rng.uniform rng < 0.3 then 10. +. Rng.uniform rng
            else 100. +. (50. *. Rng.uniform rng))
      in
      let p2 = Stats.P2.create 0.5 in
      Array.iter (Stats.P2.add p2) xs;
      (* spread ~150, generous tolerance: P² is an estimate, but it must
         land in the right mode *)
      abs_float (Stats.P2.quantile p2 -. Stats.percentile xs 50.) < 8.)

(* --- Path_model (satellite 2) ---------------------------------------------- *)

let test_path_prefix_property () =
  (* the 25-path figure population is a strict prefix of any larger sweep *)
  let small = Path_model.sample ~count:25 ~seed:1819 in
  let large = Path_model.sample ~count:100 ~seed:1819 in
  let prefix = List.filteri (fun i _ -> i < 25) large in
  Alcotest.(check bool) "first 25 of 100 = sample 25" true (small = prefix);
  (* the sampler interface agrees with the batch one *)
  let s = Path_model.sampler ~seed:1819 in
  Path_model.skip s 10;
  Alcotest.(check bool) "skip 10 then next = 11th" true
    (Path_model.next s = List.nth large 10)

let test_path_describe () =
  let p = List.hd (Path_model.sample ~count:1 ~seed:1819) in
  Alcotest.(check bool) "describe mentions kind" true
    (String.length (Path_model.describe p) > 0
    && List.mem (Path_model.kind p) [ "lossy"; "policed"; "buffered" ])

(* --- checkpoint encoding --------------------------------------------------- *)

let arb_cell =
  QCheck.(
    oneof
      [ map
          (fun (t, r) -> Ok (Float.abs t, Float.abs r))
          (pair (float_bound_exclusive 1e9) (float_bound_exclusive 10.));
        map (fun k -> Error (Sweep.F_timeout (1 + abs k mod 5))) int;
        map (fun k -> Error (Sweep.F_crash (1 + abs k mod 5))) int ])

let qcheck_cell_roundtrip =
  QCheck.Test.make ~count:200 ~name:"sweep: checkpoint cell round-trips"
    arb_cell
    (fun cell -> Sweep.cell_of_string (Sweep.cell_to_string cell) = cell)

let qcheck_shard_line_roundtrip =
  QCheck.Test.make ~count:100 ~name:"sweep: shard line round-trips"
    QCheck.(pair (pair small_nat small_nat) (list_of_size Gen.(int_range 1 8) arb_cell))
    (fun ((idx, base), cells) ->
      match Sweep.parse_shard_line (Sweep.shard_line ~idx ~base cells) with
      | Some (i, b, cs) -> i = idx && b = base && cs = cells
      | None -> false)

let test_shard_line_corruption () =
  let line = Sweep.shard_line ~idx:0 ~base:0 [ Ok (42e6, 0.05) ] in
  (* truncation (a torn write) and payload corruption must both fail the
     checksum; whitespace-only lines must not parse either *)
  Alcotest.(check bool) "truncated rejected" true
    (Sweep.parse_shard_line (String.sub line 0 (String.length line - 3))
    = None);
  let corrupt = Bytes.of_string line in
  Bytes.set corrupt 2 '9';
  Alcotest.(check bool) "corrupt payload rejected" true
    (Sweep.parse_shard_line (Bytes.to_string corrupt) = None);
  Alcotest.(check bool) "junk rejected" true
    (Sweep.parse_shard_line "S 0 0" = None)

(* --- sweep runs ------------------------------------------------------------ *)

let with_pool jobs f =
  Pool.run ~domains:jobs (fun pool ->
      E.Common.set_pool (Some pool);
      Fun.protect ~finally:(fun () -> E.Common.set_pool None) f)

let temp_name suffix =
  let f = Filename.temp_file "nimbus_sweep" suffix in
  Sys.remove f;
  f

(* small matrix of cheap schemes; budget off => fully deterministic *)
let base_cfg ?checkpoint ?resume ?stop_after ?triage_only () =
  Sweep.config ~paths:4 ~seed:7 ~schemes:[ E.Common.cubic; E.Common.vegas ]
    ~shard_size:2 ~retries:1 ?checkpoint ?resume ?stop_after ~triage_k:2
    ?triage_only
    ~sleep:(fun _ -> ())
    ()

let rendered outcome = List.map E.Table.render outcome.Sweep.tables

let test_resume_byte_identical () =
  (* reference: uninterrupted, sequential *)
  let reference = rendered (Sweep.run (base_cfg ())) in
  Alcotest.(check bool) "reference has tables" true (reference <> []);
  List.iter
    (fun jobs ->
      let ck = temp_name ".ck" in
      Fun.protect ~finally:(fun () -> if Sys.file_exists ck then Sys.remove ck)
      @@ fun () ->
      (* run shard 0, then "crash" (stop_after), then resume the rest *)
      let interrupted =
        with_pool jobs (fun () ->
            Sweep.run (base_cfg ~checkpoint:ck ~stop_after:1 ()))
      in
      Alcotest.(check bool) "interrupted flagged" true
        interrupted.Sweep.interrupted;
      Alcotest.(check int) "no tables while interrupted" 0
        (List.length interrupted.Sweep.tables);
      Alcotest.(check int) "one shard done" 1 interrupted.Sweep.completed_shards;
      let resumed =
        with_pool jobs (fun () ->
            Sweep.run (base_cfg ~checkpoint:ck ~resume:true ()))
      in
      Alcotest.(check int)
        (Printf.sprintf "all shards done (jobs=%d)" jobs)
        resumed.Sweep.total_shards resumed.Sweep.completed_shards;
      Alcotest.(check (list string))
        (Printf.sprintf "resumed tables byte-identical (jobs=%d)" jobs)
        reference (rendered resumed))
    [ 1; 2; 4 ]

let test_resume_corrupt_trailer () =
  let ck = temp_name ".ck" in
  Fun.protect ~finally:(fun () -> if Sys.file_exists ck then Sys.remove ck)
  @@ fun () ->
  let reference = rendered (Sweep.run (base_cfg ())) in
  ignore (Sweep.run (base_cfg ~checkpoint:ck ~stop_after:2 ()));
  (* tear the last shard line mid-cell, as a kill mid-write would *)
  let ic = open_in_bin ck in
  let len = in_channel_length ic in
  let contents = really_input_string ic len in
  close_in ic;
  let oc = open_out_bin ck in
  output_string oc (String.sub contents 0 (len - 7));
  close_out oc;
  let resumed = rendered (Sweep.run (base_cfg ~checkpoint:ck ~resume:true ())) in
  Alcotest.(check (list string)) "recovers from torn trailer" reference resumed

let test_resume_incompatible_header () =
  let ck = temp_name ".ck" in
  Fun.protect ~finally:(fun () -> if Sys.file_exists ck then Sys.remove ck)
  @@ fun () ->
  ignore (Sweep.run (base_cfg ~checkpoint:ck ~stop_after:1 ()));
  let other =
    Sweep.config ~paths:4 ~seed:8 ~schemes:[ E.Common.cubic; E.Common.vegas ]
      ~shard_size:2 ~checkpoint:ck ~resume:true ()
  in
  Alcotest.(check bool) "different seed rejected" true
    (match Sweep.run other with
     | exception Sweep.Checkpoint_incompatible _ -> true
     | _ -> false)

let test_triage_only_byte_identical () =
  let ck = temp_name ".ck" in
  Fun.protect ~finally:(fun () -> if Sys.file_exists ck then Sys.remove ck)
  @@ fun () ->
  (* the full run writes the checkpoint; the triage-only pass skips every
     shard, restores them all, and must print the exact same tables *)
  let reference = rendered (Sweep.run (base_cfg ~checkpoint:ck ())) in
  let triaged =
    rendered (Sweep.run (base_cfg ~checkpoint:ck ~triage_only:true ()))
  in
  Alcotest.(check (list string)) "triage-only tables byte-identical"
    reference triaged

let test_triage_only_incomplete () =
  let ck = temp_name ".ck" in
  Fun.protect ~finally:(fun () -> if Sys.file_exists ck then Sys.remove ck)
  @@ fun () ->
  ignore (Sweep.run (base_cfg ~checkpoint:ck ~stop_after:1 ()));
  Alcotest.(check bool) "partial checkpoint rejected" true
    (match Sweep.run (base_cfg ~checkpoint:ck ~triage_only:true ()) with
     | exception Sweep.Checkpoint_incomplete _ -> true
     | _ -> false);
  Alcotest.(check bool) "triage-only without checkpoint rejected" true
    (match base_cfg ~triage_only:true () with
     | exception Invalid_argument _ -> true
     | _ -> false)

let test_crash_cells () =
  (* force every attempt of one case to raise: it must cost exactly one
     typed crash cell, not the sweep *)
  E.Common.clear_crashes ();
  E.Common.set_crash_hook
    (Some (fun ~label ~seed:_ -> String.equal label "sweep/p1/vegas"));
  Fun.protect ~finally:(fun () ->
      E.Common.set_crash_hook None;
      E.Common.clear_crashes ())
  @@ fun () ->
  let cfg =
    Sweep.config ~paths:2 ~seed:7 ~schemes:[ E.Common.cubic; E.Common.vegas ]
      ~shard_size:2 ~retries:1 ~triage_k:1 ~sleep:(fun _ -> ()) ()
  in
  let o = Sweep.run cfg in
  Alcotest.(check bool) "not interrupted" false o.Sweep.interrupted;
  Alcotest.(check int) "exactly one failure" 1 o.Sweep.failures;
  (* the worst-k table surfaces the failed path with an infinite score *)
  let worst =
    List.find_opt
      (fun (t : E.Table.t) ->
        String.length t.E.Table.title >= 17
        && String.sub t.E.Table.title 0 17 = "Fleet sweep: wors")
      o.Sweep.tables
  in
  match worst with
  | None -> Alcotest.fail "missing worst-k table"
  | Some t ->
    let row = List.hd t.E.Table.rows in
    Alcotest.(check string) "failed path ranked worst" "1" (List.hd row);
    Alcotest.(check string) "infinite score" "inf" (List.nth row 2)

let test_watchdog_timeout_cells () =
  (* a fake wall clock that leaps 1000 s per reading: every attempt blows
     any positive budget at its first poll, deterministically, and the
     backoff sleep is a recorded no-op *)
  let now = ref 0. in
  let slept = ref 0 in
  let cfg =
    Sweep.config ~paths:1 ~seed:7 ~schemes:[ E.Common.cubic ] ~shard_size:1
      ~budget:5. ~retries:2 ~backoff:0.25 ~triage_k:0
      ~clock:(fun () ->
        now := !now +. 1000.;
        !now)
      ~sleep:(fun _ -> incr slept)
      ()
  in
  E.Common.clear_crashes ();
  let o = Sweep.run cfg in
  E.Common.clear_crashes ();
  Alcotest.(check int) "one failure" 1 o.Sweep.failures;
  Alcotest.(check int) "backoff slept once per retry" 2 !slept;
  let t = List.hd o.Sweep.tables in
  let row = List.hd t.E.Table.rows in
  (* per-scheme table: scheme ok timeout crash ... *)
  Alcotest.(check string) "no ok cells" "0" (List.nth row 1);
  Alcotest.(check string) "timeout cell, all attempts" "1" (List.nth row 2);
  Alcotest.(check string) "not a crash" "0" (List.nth row 3)

let test_figure_seed_alignment () =
  (* the sweep's first paths are the 25-path figure's population *)
  let cfg = Sweep.config ~paths:3 ~seed:1819 ~schemes:[ E.Common.cubic ] () in
  let figure = Path_model.sample ~count:3 ~seed:1819 in
  let o = Sweep.run cfg in
  Alcotest.(check int) "3 paths" 3 o.Sweep.paths_done;
  let t = List.hd o.Sweep.tables in
  Alcotest.(check bool) "note names the population" true
    (List.exists
       (fun n ->
         List.length figure = 3
         && String.length n > 0
         &&
         let sub = "seed 1819" in
         let rec has i =
           i + String.length sub <= String.length n
           && (String.sub n i (String.length sub) = sub || has (i + 1))
         in
         has 0)
       t.E.Table.notes)

let suite =
  [ ( "sweep.stats",
      [ Alcotest.test_case "guards" `Quick test_stats_guards;
        Alcotest.test_case "welford empty" `Quick test_welford_empty;
        qtest qcheck_welford;
        Alcotest.test_case "p2 small exact" `Quick test_p2_small_exact;
        qtest qcheck_p2_uniform; qtest qcheck_p2_bimodal ] );
    ( "sweep.path_model",
      [ Alcotest.test_case "prefix property" `Quick test_path_prefix_property;
        Alcotest.test_case "describe" `Quick test_path_describe ] );
    ( "sweep.checkpoint",
      [ qtest qcheck_cell_roundtrip; qtest qcheck_shard_line_roundtrip;
        Alcotest.test_case "corruption rejected" `Quick
          test_shard_line_corruption ] );
    ( "sweep.run",
      [ Alcotest.test_case "kill+resume byte-identical" `Slow
          test_resume_byte_identical;
        Alcotest.test_case "torn-trailer recovery" `Slow
          test_resume_corrupt_trailer;
        Alcotest.test_case "incompatible header" `Slow
          test_resume_incompatible_header;
        Alcotest.test_case "triage-only byte-identical" `Slow
          test_triage_only_byte_identical;
        Alcotest.test_case "triage-only incomplete checkpoint" `Slow
          test_triage_only_incomplete;
        Alcotest.test_case "crash cells" `Slow test_crash_cells;
        Alcotest.test_case "watchdog timeout cells" `Quick
          test_watchdog_timeout_cells;
        Alcotest.test_case "figure seed alignment" `Slow
          test_figure_seed_alignment ] ) ]
