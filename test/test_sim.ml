(* Unit and property tests for the discrete-event simulation substrate. *)

open Nimbus_sim
module Time = Units.Time
module Rate = Units.Rate

let check_close ?(eps = 1e-9) msg expected actual =
  if Float.abs (expected -. actual) > eps then
    Alcotest.failf "%s: expected %.12g, got %.12g" msg expected actual

(* --- heap ---------------------------------------------------------------- *)

let test_heap_sorted_pops () =
  let h = Heap.create () in
  List.iter (fun k -> Heap.push h ~key:k k) [ 5.; 1.; 4.; 2.; 3. ];
  let rec drain acc =
    match Heap.pop h with
    | None -> List.rev acc
    | Some (k, _) -> drain (k :: acc)
  in
  Alcotest.(check (list (float 0.))) "sorted" [ 1.; 2.; 3.; 4.; 5. ] (drain [])

let test_heap_fifo_ties () =
  let h = Heap.create () in
  List.iter (fun v -> Heap.push h ~key:1. v) [ "a"; "b"; "c" ];
  let pop () = match Heap.pop h with Some (_, v) -> v | None -> "?" in
  let first = pop () in
  let second = pop () in
  let third = pop () in
  Alcotest.(check (list string)) "fifo among equal keys" [ "a"; "b"; "c" ]
    [ first; second; third ]

let test_heap_peek_clear () =
  let h = Heap.create () in
  Alcotest.(check bool) "empty" true (Heap.is_empty h);
  Heap.push h ~key:2. ();
  Heap.push h ~key:1. ();
  Alcotest.(check (option (float 0.))) "peek" (Some 1.) (Heap.peek_key h);
  Alcotest.(check int) "size" 2 (Heap.size h);
  Heap.clear h;
  Alcotest.(check bool) "cleared" true (Heap.is_empty h)

let prop_heap_sorts =
  QCheck.Test.make ~count:100 ~name:"heap: pops are sorted"
    QCheck.(list (float_bound_exclusive 1000.))
    (fun keys ->
      let h = Heap.create () in
      List.iter (fun k -> Heap.push h ~key:k ()) keys;
      let rec drain prev =
        match Heap.pop h with
        | None -> true
        | Some (k, ()) -> k >= prev && drain k
      in
      drain neg_infinity)

(* --- wheel --------------------------------------------------------------- *)

let test_wheel_sorted_pops () =
  let w = Wheel.create () in
  List.iter (fun k -> Wheel.push w ~key:k k) [ 5e-3; 1e-3; 4e-3; 2e-3; 3e-3 ];
  let rec drain acc =
    if Wheel.is_empty w then List.rev acc
    else begin
      let k = Wheel.top_key w in
      let v = Wheel.pop_top w in
      check_close "key matches payload" v k;
      drain (k :: acc)
    end
  in
  Alcotest.(check (list (float 0.)))
    "sorted" [ 1e-3; 2e-3; 3e-3; 4e-3; 5e-3 ] (drain [])

let test_wheel_fifo_across_spill () =
  (* a key first lands in the overflow heap (beyond the 1024-slot horizon),
     then — after the cursor advances — the same key lands in a slot; the
     shared sequence counter must keep the pops in push order *)
  let w = Wheel.create ~width:1e-3 () in
  Wheel.push w ~key:1.2 "a" (* 1200 slots ahead: spills to the heap *);
  Wheel.push w ~key:0.5 "b" (* in a slot *);
  Alcotest.(check string) "near event first" "b" (Wheel.pop_top w);
  (* cursor is now at slot 500, so 1.2 is within the horizon *)
  Wheel.push w ~key:1.2 "c";
  Wheel.push w ~key:1.2 "d";
  (* explicit lets: list elements would evaluate right-to-left *)
  let first = Wheel.pop_top w in
  let second = Wheel.pop_top w in
  let third = Wheel.pop_top w in
  Alcotest.(check (list string)) "FIFO across heap and slots" [ "a"; "c"; "d" ]
    [ first; second; third ];
  Alcotest.(check bool) "drained" true (Wheel.is_empty w)

let test_wheel_wraparound () =
  (* interleaved push/pop walking far past nslots * width: the physical
     slots wrap around many times and order must survive *)
  let w = Wheel.create () (* 1024 x 64 us ~ 65.5 ms horizon *) in
  for i = 0 to 499 do
    let base = float_of_int i *. 0.02 in
    Wheel.push w ~key:base (2 * i);
    Wheel.push w ~key:(base +. 0.001) ((2 * i) + 1);
    Alcotest.(check int) "first of pair" (2 * i) (Wheel.pop_top w);
    Alcotest.(check int) "second of pair" ((2 * i) + 1) (Wheel.pop_top w)
  done;
  Alcotest.(check int) "empty" 0 (Wheel.size w)

let prop_wheel_matches_heap =
  (* the equivalence contract behind switching Engine onto the wheel: under
     random schedules (quantized keys force ties, the delay tail reaches past
     the horizon to exercise the heap spill) the wheel pops exactly the
     (key, value) sequence the FIFO-tie-breaking heap does *)
  QCheck.Test.make ~count:80 ~name:"wheel: pop order identical to heap"
    QCheck.(pair (int_range 0 100_000) (int_range 1 400))
    (fun (seed, nops) ->
      let rng = Rng.create seed in
      let w = Wheel.create ~width:1e-3 () in
      let h = Heap.create () in
      let now = ref 0. in
      let next = ref 0 in
      let ok = ref true in
      let pop_both () =
        let wk = Wheel.top_key w and hk = Heap.top_key h in
        let wv = Wheel.pop_top w and hv = Heap.pop_top h in
        if not (Float.equal wk hk) || wv <> hv then ok := false;
        now := hk
      in
      for _ = 1 to nops do
        if Wheel.is_empty w || Rng.bool rng ~p:0.7 then begin
          let key = !now +. (float_of_int (Rng.int rng 40) /. 8.) in
          Wheel.push w ~key !next;
          Heap.push h ~key !next;
          incr next
        end
        else pop_both ()
      done;
      while not (Wheel.is_empty w) do
        pop_both ()
      done;
      !ok && Heap.is_empty h)

(* --- engine -------------------------------------------------------------- *)

let test_engine_ordering () =
  let e = Engine.create Engine.Config.default in
  let log = ref [] in
  Engine.schedule_in e (Time.secs 0.3) (fun () -> log := 3 :: !log);
  Engine.schedule_in e (Time.secs 0.1) (fun () -> log := 1 :: !log);
  Engine.schedule_in e (Time.secs 0.2) (fun () -> log := 2 :: !log);
  Engine.run_until e (Time.secs 1.);
  Alcotest.(check (list int)) "order" [ 1; 2; 3 ] (List.rev !log);
  check_close "clock at horizon" 1. (Time.to_secs (Engine.now e))

let test_engine_horizon () =
  let e = Engine.create Engine.Config.default in
  let fired = ref false in
  Engine.schedule_in e (Time.secs 5.) (fun () -> fired := true);
  Engine.run_until e (Time.secs 1.);
  Alcotest.(check bool) "beyond horizon not fired" false !fired;
  Alcotest.(check int) "still pending" 1 (Engine.pending e);
  Engine.run_until e (Time.secs 10.);
  Alcotest.(check bool) "fires later" true !fired

let test_engine_every () =
  let e = Engine.create Engine.Config.default in
  let count = ref 0 in
  Engine.every e ~dt:(Time.secs 0.5) ~until:(Time.secs 2.9) (fun () -> incr count);
  Engine.run_until e (Time.secs 10.);
  (* first at 0.5, then 1.0 .. 2.5: stops once the next tick exceeds until *)
  Alcotest.(check int) "periodic fires" 5 !count

let test_engine_rejects_past () =
  let e = Engine.create Engine.Config.default in
  Engine.schedule_in e (Time.secs 1.) (fun () -> ());
  Engine.run_until e (Time.secs 1.);
  Alcotest.(check bool) "past raises" true
    (try
       Engine.schedule_at e (Time.secs 0.5) (fun () -> ());
       false
     with Invalid_argument _ -> true)

let test_engine_rejects_non_finite () =
  let e = Engine.create Engine.Config.default in
  let raises name f =
    Alcotest.(check bool) name true
      (try
         f ();
         false
       with Invalid_argument _ -> true)
  in
  raises "schedule_at nan" (fun () ->
      Engine.schedule_at e (Time.secs nan) (fun () -> ()));
  raises "schedule_at +inf" (fun () ->
      Engine.schedule_at e (Time.secs infinity) (fun () -> ()));
  raises "schedule_in nan" (fun () ->
      Engine.schedule_in e (Time.secs nan) (fun () -> ()));
  raises "schedule_in -inf" (fun () ->
      Engine.schedule_in e (Time.secs neg_infinity) (fun () -> ()));
  raises "every nan dt" (fun () ->
      Engine.every e ~dt:(Time.secs nan) (fun () -> ()));
  (* the queue must still be usable after the rejections *)
  let hit = ref false in
  Engine.schedule_in e (Time.secs 1.) (fun () -> hit := true);
  Engine.run_until e (Time.secs 2.);
  Alcotest.(check bool) "engine survives" true !hit

let test_engine_nested_schedule () =
  let e = Engine.create Engine.Config.default in
  let hits = ref [] in
  Engine.schedule_in e (Time.secs 1.) (fun () ->
      hits := Time.to_secs (Engine.now e) :: !hits;
      Engine.schedule_in e (Time.secs 1.) (fun () -> hits := Time.to_secs (Engine.now e) :: !hits));
  Engine.run_until e (Time.secs 5.);
  Alcotest.(check (list (float 1e-9))) "nested" [ 1.; 2. ] (List.rev !hits)

(* --- rng ----------------------------------------------------------------- *)

let test_rng_deterministic () =
  let a = Rng.create 42 and b = Rng.create 42 in
  for _ = 1 to 100 do
    if Rng.bits a <> Rng.bits b then Alcotest.fail "same seed diverges"
  done

let test_rng_split_independent () =
  let a = Rng.create 42 in
  let c = Rng.split a in
  let x = Rng.bits a and y = Rng.bits c in
  Alcotest.(check bool) "different streams" true (x <> y)

let test_rng_uniform_range () =
  let r = Rng.create 5 in
  for _ = 1 to 1000 do
    let u = Rng.uniform r in
    if u < 0. || u >= 1. then Alcotest.fail "uniform out of range"
  done

let test_rng_exponential_mean () =
  let r = Rng.create 6 in
  let n = 20000 in
  let acc = ref 0. in
  for _ = 1 to n do
    acc := !acc +. Rng.exponential r ~mean:2.5
  done;
  let mean = !acc /. float_of_int n in
  if Float.abs (mean -. 2.5) > 0.1 then
    Alcotest.failf "exponential mean %.3f != 2.5" mean

let test_rng_bool_probability () =
  let r = Rng.create 7 in
  let n = 20000 in
  let hits = ref 0 in
  for _ = 1 to n do
    if Rng.bool r ~p:0.3 then incr hits
  done;
  let frac = float_of_int !hits /. float_of_int n in
  if Float.abs (frac -. 0.3) > 0.02 then Alcotest.failf "p=0.3 got %.3f" frac

let test_rng_pareto_minimum () =
  let r = Rng.create 8 in
  for _ = 1 to 1000 do
    if Rng.pareto r ~shape:1.3 ~scale:100. < 100. then
      Alcotest.fail "pareto below scale"
  done

let prop_rng_int_bound =
  QCheck.Test.make ~count:100 ~name:"rng: int respects bound"
    QCheck.(pair small_int (int_range 1 1000))
    (fun (seed, bound) ->
      let r = Rng.create seed in
      let v = Rng.int r bound in
      v >= 0 && v < bound)

(* --- packet -------------------------------------------------------------- *)

let test_packet_fields () =
  let p = Packet.make ~flow:3 ~seq:7 ~size:1500 ~now:(Time.secs 2.5) () in
  Alcotest.(check int) "flow" 3 p.Packet.flow;
  Alcotest.(check int) "seq" 7 p.Packet.seq;
  check_close "sent_at" 2.5 (Time.to_secs p.Packet.sent_at);
  Alcotest.(check bool) "queueing delay nan before dequeue" true
    (not (Time.is_known (Packet.queueing_delay p)))

(* --- qdisc --------------------------------------------------------------- *)

let test_droptail_capacity () =
  let q = Qdisc.droptail ~capacity_bytes:3000 in
  Alcotest.(check bool) "admit within" true
    (Qdisc.admit q ~now:Time.zero ~qlen_bytes:1500 ~pkt_size:1500);
  Alcotest.(check bool) "reject overflow" false
    (Qdisc.admit q ~now:Time.zero ~qlen_bytes:1501 ~pkt_size:1500);
  Alcotest.(check string) "name" "droptail" (Qdisc.name q)

let test_pie_drops_under_load () =
  let rng = Rng.create 3 in
  let q =
    Qdisc.pie ~capacity_bytes:1_000_000 ~target_delay:(Time.ms 15.)
      ~link_rate:(Rate.bps 48e6) ~rng ()
  in
  Alcotest.(check string) "name" "pie" (Qdisc.name q);
  (* sustained deep queue (~10x target) must start dropping *)
  let drops = ref 0 in
  for i = 1 to 4000 do
    let now = Time.ms (float_of_int i) in
    if not (Qdisc.admit q ~now ~qlen_bytes:900_000 ~pkt_size:1500) then
      incr drops
  done;
  Alcotest.(check bool) "pie drops under sustained load" true (!drops > 50)

let test_pie_spares_short_queue () =
  let rng = Rng.create 4 in
  let q =
    Qdisc.pie ~capacity_bytes:1_000_000 ~target_delay:(Time.ms 15.)
      ~link_rate:(Rate.bps 48e6) ~rng ()
  in
  let drops = ref 0 in
  for i = 1 to 2000 do
    let now = Time.ms (float_of_int i) in
    if not (Qdisc.admit q ~now ~qlen_bytes:3000 ~pkt_size:1500) then incr drops
  done;
  Alcotest.(check int) "no drops below target/2" 0 !drops

(* --- bottleneck ---------------------------------------------------------- *)

let drain_packets engine bn ~flow ~count ~size =
  let delivered = ref [] in
  Bottleneck.set_sink bn ~flow (fun p -> delivered := p :: !delivered);
  for seq = 0 to count - 1 do
    Bottleneck.enqueue bn
      (Packet.make ~flow ~seq ~size ~now:(Engine.now engine) ())
  done;
  delivered

let test_bottleneck_serialization_rate () =
  let e = Engine.create Engine.Config.default in
  let bn =
    Bottleneck.create e
      (Bottleneck.Config.default ~rate:(Rate.bps 12e6)
         ~qdisc:(Qdisc.droptail ~capacity_bytes:1_000_000))
  in
  let delivered = drain_packets e bn ~flow:0 ~count:10 ~size:1500 in
  Engine.run_until e (Time.secs 1.);
  Alcotest.(check int) "all delivered" 10 (List.length !delivered);
  (* 10 pkts * 1500 B * 8 / 12 Mbps = 10 ms *)
  let last = List.hd !delivered in
  check_close ~eps:1e-9 "last dequeue time" 0.01 (Time.to_secs last.Packet.dequeued_at);
  check_close ~eps:1e-9 "busy time" 0.01 (Time.to_secs (Bottleneck.busy_time bn))

let test_bottleneck_fifo_order () =
  let e = Engine.create Engine.Config.default in
  let bn =
    Bottleneck.create e
      (Bottleneck.Config.default ~rate:(Rate.bps 10e6)
         ~qdisc:(Qdisc.droptail ~capacity_bytes:1_000_000))
  in
  let delivered = drain_packets e bn ~flow:0 ~count:20 ~size:1000 in
  Engine.run_until e (Time.secs 1.);
  let seqs = List.rev_map (fun p -> p.Packet.seq) !delivered in
  Alcotest.(check (list int)) "fifo" (List.init 20 (fun i -> i)) seqs

let test_bottleneck_drops_at_capacity () =
  let e = Engine.create Engine.Config.default in
  let bn =
    Bottleneck.create e
      (Bottleneck.Config.default ~rate:(Rate.bps 1e6)
         ~qdisc:(Qdisc.droptail ~capacity_bytes:4500))
  in
  let _ = drain_packets e bn ~flow:0 ~count:10 ~size:1500 in
  (* capacity 3 pkts: 3 admitted instantly, 7 dropped *)
  Alcotest.(check int) "drops" 7 (Bottleneck.drops bn);
  Alcotest.(check int) "drops for flow" 7 (Bottleneck.drops_for bn ~flow:0);
  check_close "queue delay" (4500. *. 8. /. 1e6) (Time.to_secs (Bottleneck.queue_delay bn))

let test_bottleneck_random_loss () =
  let e = Engine.create Engine.Config.default in
  let bn =
    Bottleneck.create e
      { (Bottleneck.Config.default ~rate:(Rate.bps 100e6)
           ~qdisc:(Qdisc.droptail ~capacity_bytes:10_000_000))
        with random_loss = Some (0.5, Rng.create 9) }
  in
  for seq = 0 to 999 do
    Bottleneck.enqueue bn (Packet.make ~flow:0 ~seq ~size:1500 ~now:Time.zero ())
  done;
  let d = Bottleneck.drops bn in
  Alcotest.(check bool) "about half dropped" true (d > 400 && d < 600)

let test_bottleneck_policer () =
  let e = Engine.create Engine.Config.default in
  let bn =
    Bottleneck.create e
      { (Bottleneck.Config.default ~rate:(Rate.bps 100e6)
           ~qdisc:(Qdisc.droptail ~capacity_bytes:10_000_000))
        with policer = Some (Rate.bps 8e6, 3000) }
  in
  (* burst of 10 packets at t=0: bucket holds 2, rest dropped *)
  for seq = 0 to 9 do
    Bottleneck.enqueue bn (Packet.make ~flow:0 ~seq ~size:1500 ~now:Time.zero ())
  done;
  Alcotest.(check int) "policed" 8 (Bottleneck.drops bn)

let test_bottleneck_delivered_accounting () =
  let e = Engine.create Engine.Config.default in
  let bn =
    Bottleneck.create e
      (Bottleneck.Config.default ~rate:(Rate.bps 10e6)
         ~qdisc:(Qdisc.droptail ~capacity_bytes:1_000_000))
  in
  let _ = drain_packets e bn ~flow:5 ~count:4 ~size:1000 in
  Engine.run_until e (Time.secs 1.);
  Alcotest.(check int) "delivered bytes" 4000
    (Bottleneck.delivered_bytes bn ~flow:5);
  Alcotest.(check int) "other flow" 0 (Bottleneck.delivered_bytes bn ~flow:6)

let qtest = QCheck_alcotest.to_alcotest

let suite =
  [ ( "sim.heap",
      [ Alcotest.test_case "sorted pops" `Quick test_heap_sorted_pops;
        Alcotest.test_case "fifo ties" `Quick test_heap_fifo_ties;
        Alcotest.test_case "peek/clear" `Quick test_heap_peek_clear;
        qtest prop_heap_sorts ] );
    ( "sim.wheel",
      [ Alcotest.test_case "sorted pops" `Quick test_wheel_sorted_pops;
        Alcotest.test_case "fifo across spill" `Quick
          test_wheel_fifo_across_spill;
        Alcotest.test_case "wraparound" `Quick test_wheel_wraparound;
        qtest prop_wheel_matches_heap ] );
    ( "sim.engine",
      [ Alcotest.test_case "ordering" `Quick test_engine_ordering;
        Alcotest.test_case "horizon" `Quick test_engine_horizon;
        Alcotest.test_case "every" `Quick test_engine_every;
        Alcotest.test_case "rejects past" `Quick test_engine_rejects_past;
        Alcotest.test_case "rejects non-finite" `Quick
          test_engine_rejects_non_finite;
        Alcotest.test_case "nested schedule" `Quick test_engine_nested_schedule ] );
    ( "sim.rng",
      [ Alcotest.test_case "deterministic" `Quick test_rng_deterministic;
        Alcotest.test_case "split independent" `Quick test_rng_split_independent;
        Alcotest.test_case "uniform range" `Quick test_rng_uniform_range;
        Alcotest.test_case "exponential mean" `Quick test_rng_exponential_mean;
        Alcotest.test_case "bool probability" `Quick test_rng_bool_probability;
        Alcotest.test_case "pareto minimum" `Quick test_rng_pareto_minimum;
        qtest prop_rng_int_bound ] );
    ("sim.packet", [ Alcotest.test_case "fields" `Quick test_packet_fields ]);
    ( "sim.qdisc",
      [ Alcotest.test_case "droptail capacity" `Quick test_droptail_capacity;
        Alcotest.test_case "pie drops under load" `Quick test_pie_drops_under_load;
        Alcotest.test_case "pie spares short queue" `Quick
          test_pie_spares_short_queue ] );
    ( "sim.bottleneck",
      [ Alcotest.test_case "serialization rate" `Quick
          test_bottleneck_serialization_rate;
        Alcotest.test_case "fifo order" `Quick test_bottleneck_fifo_order;
        Alcotest.test_case "drops at capacity" `Quick
          test_bottleneck_drops_at_capacity;
        Alcotest.test_case "random loss" `Quick test_bottleneck_random_loss;
        Alcotest.test_case "policer" `Quick test_bottleneck_policer;
        Alcotest.test_case "delivered accounting" `Quick
          test_bottleneck_delivered_accounting ] ) ]
