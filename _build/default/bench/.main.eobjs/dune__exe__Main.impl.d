bench/main.ml: Arg Cmd Cmdliner List Micro Nimbus_experiments Printf Sys Term
