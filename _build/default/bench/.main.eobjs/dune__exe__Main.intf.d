bench/main.mli:
