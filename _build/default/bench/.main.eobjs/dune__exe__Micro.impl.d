bench/micro.ml: Analyze Array Bechamel Benchmark Hashtbl Instance List Measure Nimbus_cc Nimbus_core Nimbus_dsp Nimbus_sim Printf Staged Test Time Toolkit
