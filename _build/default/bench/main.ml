(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (quick profile by default; --full for paper-scale runs), plus
   Bechamel micro-benchmarks of the core primitives (--micro).

   Usage:
     bench/main.exe                 run all experiments, quick profile
     bench/main.exe --full          paper durations and repetitions
     bench/main.exe --only fig8     one experiment
     bench/main.exe --micro         only the Bechamel primitives
     bench/main.exe --list          list experiment ids *)

module Registry = Nimbus_experiments.Registry
module Table = Nimbus_experiments.Table
module Common = Nimbus_experiments.Common

let run_experiment profile (e : Registry.experiment) =
  Printf.printf "\n### [%s] %s\n%!" e.Registry.id e.Registry.title;
  let started = Sys.time () in
  let tables = e.Registry.run profile in
  List.iter Table.print tables;
  Printf.printf "  (%.1f s cpu)\n%!" (Sys.time () -. started)

let main full only micro list_ids =
  if list_ids then begin
    List.iter print_endline Registry.ids;
    0
  end
  else begin
    let profile = if full then Common.full else Common.quick in
    if micro then begin
      Micro.run ();
      0
    end
    else begin
      let todo =
        match only with
        | Some id -> (
          match Registry.find id with
          | Some e -> [ e ]
          | None ->
            Printf.eprintf "unknown experiment %S; try --list\n" id;
            exit 2)
        | None -> Registry.all
      in
      Printf.printf "nimbus reproduction bench: %d experiment(s), %s profile\n%!"
        (List.length todo)
        (if full then "full" else "quick");
      List.iter (run_experiment profile) todo;
      if only = None && not full then Micro.run ();
      0
    end
  end

open Cmdliner

let full =
  Arg.(value & flag & info [ "full" ] ~doc:"Paper-scale durations and seeds.")

let only =
  Arg.(
    value
    & opt (some string) None
    & info [ "only" ] ~docv:"ID" ~doc:"Run a single experiment.")

let micro =
  Arg.(value & flag & info [ "micro" ] ~doc:"Only Bechamel micro-benchmarks.")

let list_ids =
  Arg.(value & flag & info [ "list" ] ~doc:"List experiment ids and exit.")

let cmd =
  let doc = "regenerate the paper's tables and figures" in
  Cmd.v
    (Cmd.info "nimbus-bench" ~doc)
    Term.(const main $ full $ only $ micro $ list_ids)

let () = exit (Cmd.eval' cmd)
