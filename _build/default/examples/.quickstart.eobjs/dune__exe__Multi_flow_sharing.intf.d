examples/multi_flow_sharing.mli:
