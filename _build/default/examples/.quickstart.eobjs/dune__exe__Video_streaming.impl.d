examples/video_streaming.ml: Nimbus_cc Nimbus_core Nimbus_sim Nimbus_traffic Printf
