examples/detector_playground.mli:
