examples/detector_playground.ml: Nimbus_core Nimbus_sim Printf
