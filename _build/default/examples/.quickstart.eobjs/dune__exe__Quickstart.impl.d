examples/quickstart.ml: Nimbus_cc Nimbus_core Nimbus_sim Nimbus_traffic Printf
