examples/quickstart.mli:
