examples/wan_bulk_transfer.ml: Array Nimbus_cc Nimbus_core Nimbus_sim Nimbus_traffic Printf
