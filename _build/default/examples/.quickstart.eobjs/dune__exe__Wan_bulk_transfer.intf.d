examples/wan_bulk_transfer.mli:
