examples/multi_flow_sharing.ml: List Nimbus_cc Nimbus_core Nimbus_sim Printf
