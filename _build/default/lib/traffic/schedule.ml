module Engine = Nimbus_sim.Engine
module Flow = Nimbus_cc.Flow
module Cubic = Nimbus_cc.Cubic

type phase = {
  p_start : float;
  p_end : float;
  inelastic_bps : float;
  elastic_flows : int;
}

let phase ~start ~stop ~inelastic_bps ~elastic_flows =
  if stop <= start then invalid_arg "Schedule.phase: stop <= start";
  if elastic_flows < 0 then invalid_arg "Schedule.phase: negative flow count";
  { p_start = start; p_end = stop; inelastic_bps; elastic_flows }

type t = {
  phases : phase list;
  source : Source.t;
  mutable created : Flow.t list;
}

let phase_at t now =
  List.find_opt (fun p -> now >= p.p_start && now < p.p_end) t.phases

let install engine bottleneck ~rng ~phases ?(inelastic = `Poisson)
    ?(prop_rtt = 0.05) ?elastic_cc () =
  if phases = [] then invalid_arg "Schedule.install: no phases";
  let make_cc =
    match elastic_cc with Some f -> f | None -> fun () -> Cubic.make ()
  in
  let source =
    match inelastic with
    | `Poisson -> Source.poisson engine bottleneck ~rng ~rate_bps:0. ()
    | `Cbr -> Source.cbr engine bottleneck ~rate_bps:0. ()
  in
  let t = { phases; source; created = [] } in
  List.iter
    (fun p ->
      Engine.schedule_at engine p.p_start (fun () ->
          Source.set_rate source p.inelastic_bps;
          let flows =
            List.init p.elastic_flows (fun _ ->
                Flow.create engine bottleneck ~cc:(make_cc ()) ~prop_rtt ())
          in
          t.created <- t.created @ flows;
          Engine.schedule_at engine p.p_end (fun () ->
              List.iter Flow.stop flows)))
    phases;
  (* silence the source after the last phase *)
  let last_end =
    List.fold_left (fun acc p -> Float.max acc p.p_end) neg_infinity phases
  in
  Engine.schedule_at engine last_end (fun () -> Source.set_rate source 0.);
  t

let elastic_present t ~now =
  match phase_at t now with
  | Some p -> p.elastic_flows > 0
  | None -> false

let inelastic_rate t ~now =
  match phase_at t now with
  | Some p -> p.inelastic_bps
  | None -> 0.

let fair_share t ~now ~mu ~primary_flows =
  match phase_at t now with
  | None -> mu /. float_of_int (max 1 primary_flows)
  | Some p ->
    let remaining = Float.max 0. (mu -. p.inelastic_bps) in
    remaining /. float_of_int (max 1 (p.elastic_flows + primary_flows))

let elastic_cross_flows t = t.created
