lib/traffic/video.mli: Nimbus_sim
