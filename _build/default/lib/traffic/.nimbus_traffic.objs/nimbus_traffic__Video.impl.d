lib/traffic/video.ml: Array Float Nimbus_cc Nimbus_dsp Nimbus_sim
