lib/traffic/schedule.ml: Float List Nimbus_cc Nimbus_sim Source
