lib/traffic/wan.ml: Array Float List Nimbus_cc Nimbus_sim
