lib/traffic/source.ml: Float Nimbus_cc Nimbus_sim
