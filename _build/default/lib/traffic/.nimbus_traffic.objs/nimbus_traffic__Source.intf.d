lib/traffic/source.mli: Nimbus_sim
