lib/traffic/wan.mli: Nimbus_sim
