lib/traffic/schedule.mli: Nimbus_cc Nimbus_sim
