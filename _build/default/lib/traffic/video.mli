(** DASH-style adaptive video client, used as cross traffic (§8.1, Fig. 11).

    The client downloads fixed-duration chunks over a Cubic transport,
    choosing a bitrate from its ladder with a standard hybrid rule
    (throughput estimate scaled by a safety factor, overridden near buffer
    limits). Whether such a stream behaves as elastic or inelastic cross
    traffic depends on where the ladder tops out relative to the fair share:
    a 4K ladder is network-limited (elastic), a 1080p ladder leaves the
    client idle between chunks (application-limited, inelastic). *)

type t

(** Bitrate ladders in bits/s. *)
val ladder_4k : float array

val ladder_1080p : float array

(** [create engine bottleneck ~ladder ()] starts a client.
    @param chunk_seconds media seconds per chunk (default 4)
    @param prop_rtt transport propagation RTT (default 0.05 s)
    @param buffer_low start panicking below this many buffered seconds
           (default 8)
    @param buffer_high stop requesting above this (default 20)
    @param start absolute start time *)
val create :
  Nimbus_sim.Engine.t ->
  Nimbus_sim.Bottleneck.t ->
  ladder:float array ->
  ?chunk_seconds:float ->
  ?prop_rtt:float ->
  ?buffer_low:float ->
  ?buffer_high:float ->
  ?start:float ->
  unit ->
  t

(** [buffer_seconds t] — current playback buffer. *)
val buffer_seconds : t -> float

(** [current_bitrate_bps t] — ladder rung of the chunk in flight (or last
    completed). *)
val current_bitrate_bps : t -> float

(** [chunks_fetched t]. *)
val chunks_fetched : t -> int

(** [rebuffer_seconds t] — cumulative stall time. *)
val rebuffer_seconds : t -> float

(** [flow_id t] — bottleneck accounting id of the transport flow. *)
val flow_id : t -> int
