(** Raw, open-loop packet injectors — the inelastic cross traffic of the
    paper's experiments. They push packets straight into the bottleneck with
    no acknowledgements and no congestion response. *)

type t

(** [poisson engine bottleneck ~rng ~rate_bps ()] injects packets with
    exponential inter-arrival times averaging [rate_bps].
    @param pkt_size bytes (default 1500)
    @param start absolute start time (default now)
    @param stop absolute stop time (default never) *)
val poisson :
  Nimbus_sim.Engine.t ->
  Nimbus_sim.Bottleneck.t ->
  rng:Nimbus_sim.Rng.t ->
  rate_bps:float ->
  ?pkt_size:int ->
  ?start:float ->
  ?stop:float ->
  unit ->
  t

(** [cbr engine bottleneck ~rate_bps ()] injects packets with deterministic
    spacing — a constant-bit-rate stream. *)
val cbr :
  Nimbus_sim.Engine.t ->
  Nimbus_sim.Bottleneck.t ->
  rate_bps:float ->
  ?pkt_size:int ->
  ?start:float ->
  ?stop:float ->
  unit ->
  t

(** [flow_id t] — for per-flow accounting at the bottleneck. *)
val flow_id : t -> int

(** [set_rate t rate_bps] changes the injection rate (0 pauses); scripted
    scenarios use this to vary the inelastic load. *)
val set_rate : t -> float -> unit

(** [rate_bps t]. *)
val rate_bps : t -> float

(** [halt t] stops the source permanently. *)
val halt : t -> unit
