type kind =
  | Rectangular
  | Hann
  | Hamming
  | Blackman

let pi = 4.0 *. atan 1.0

let coefficients kind n =
  if n <= 0 then [||]
  else if n = 1 then [| 1.0 |]
  else begin
    let denom = float_of_int (n - 1) in
    let at i =
      let x = float_of_int i /. denom in
      match kind with
      | Rectangular -> 1.0
      | Hann -> 0.5 *. (1.0 -. cos (2.0 *. pi *. x))
      | Hamming -> 0.54 -. (0.46 *. cos (2.0 *. pi *. x))
      | Blackman ->
        0.42
        -. (0.5 *. cos (2.0 *. pi *. x))
        +. (0.08 *. cos (4.0 *. pi *. x))
    in
    Array.init n at
  end

let apply kind xs =
  let w = coefficients kind (Array.length xs) in
  Array.mapi (fun i x -> x *. w.(i)) xs

let coherent_gain kind n =
  if n <= 0 then 0.0
  else begin
    let w = coefficients kind n in
    Array.fold_left ( +. ) 0.0 w /. float_of_int n
  end
