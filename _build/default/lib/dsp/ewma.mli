(** Exponentially weighted moving averages.

    Watcher flows smooth their transmission rate with an EWMA whose cut-off
    sits below the pulsing frequencies, so the pulser never mistakes a watcher
    for elastic cross traffic (§6 of the paper). *)

type t

(** [create ~alpha] with [0 < alpha <= 1]; larger [alpha] weights new samples
    more. @raise Invalid_argument outside that range. *)
val create : alpha:float -> t

(** [create_time_constant ~tau ~dt] derives alpha for samples arriving every
    [dt] seconds so the filter has time constant [tau] seconds
    (alpha = 1 − exp(−dt/τ)). *)
val create_time_constant : tau:float -> dt:float -> t

(** [create_cutoff ~freq ~dt] derives alpha so the −3 dB point of the filter
    sits at [freq] Hz for samples arriving every [dt] seconds. *)
val create_cutoff : freq:float -> dt:float -> t

(** [update t x] folds in sample [x] and returns the new average. The first
    sample initialises the average. *)
val update : t -> float -> float

(** [value t] is the current average ([0.] before any sample). *)
val value : t -> float

(** [initialized t] holds after the first {!update}. *)
val initialized : t -> bool

(** [reset t] forgets all state. *)
val reset : t -> unit
