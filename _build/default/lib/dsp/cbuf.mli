(** Complex-valued buffers stored as parallel [re]/[im] float arrays.

    This representation avoids boxing each complex number and lets the FFT
    kernels run in place over flat arrays. *)

type t = {
  re : float array;
  im : float array;
}

(** [create n] is a zeroed buffer of length [n]. *)
val create : int -> t

(** [length b] is the number of complex slots in [b]. *)
val length : t -> int

(** [of_real xs] copies [xs] into the real parts, zeroing imaginary parts. *)
val of_real : float array -> t

(** [copy b] is a deep copy of [b]. *)
val copy : t -> t

(** [fill_zero b] resets every slot of [b] to [0 + 0i]. *)
val fill_zero : t -> unit

(** [get b i] is the [i]-th complex value as a [(re, im)] pair. *)
val get : t -> int -> float * float

(** [set b i re im] stores [re + im·i] at slot [i]. *)
val set : t -> int -> float -> float -> unit

(** [mul b i re im] multiplies slot [i] in place by [re + im·i]. *)
val mul : t -> int -> float -> float -> unit

(** [magnitude b i] is [|b.(i)|]. *)
val magnitude : t -> int -> float

(** [magnitudes b] is the array of moduli of all slots. *)
val magnitudes : t -> float array

(** [scale b k] multiplies every slot by the real scalar [k]. *)
val scale : t -> float -> unit

(** [blit ~src ~src_pos ~dst ~dst_pos ~len] copies complex slots. *)
val blit : src:t -> src_pos:int -> dst:t -> dst_pos:int -> len:int -> unit
