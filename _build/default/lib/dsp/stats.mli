(** Descriptive statistics used throughout the evaluation harness. *)

(** [mean xs] — [nan] on empty input. *)
val mean : float array -> float

(** [variance xs] is the population variance; [nan] on empty input. *)
val variance : float array -> float

(** [stddev xs] is [sqrt (variance xs)]. *)
val stddev : float array -> float

(** [percentile xs p] for [p] in [0..100], linear interpolation between order
    statistics. Does not modify [xs]. @raise Invalid_argument on empty input
    or [p] outside [0, 100]. *)
val percentile : float array -> float -> float

(** [median xs] = [percentile xs 50.]. *)
val median : float array -> float

(** [minimum xs], [maximum xs]. @raise Invalid_argument on empty input. *)
val minimum : float array -> float

val maximum : float array -> float

(** [cdf_points xs ~points] samples the empirical CDF at [points] evenly
    spaced quantiles, returning [(value, cumulative_probability)] pairs in
    ascending order — the series behind the paper's CDF figures. *)
val cdf_points : float array -> points:int -> (float * float) array

(** [correlation xs ys] is the Pearson correlation coefficient.
    @raise Invalid_argument on mismatched lengths or fewer than 2 samples. *)
val correlation : float array -> float array -> float

(** [cross_correlation xs ys ~max_lag] is the array of normalized
    cross-correlations of [xs] against [ys] delayed by lag k, for k in
    [0 .. max_lag]: element k correlates [xs.(i)] with [ys.(i+k)]. This is
    the paper's rejected time-domain detector, kept for the ablation bench. *)
val cross_correlation : float array -> float array -> max_lag:int -> float array

(** [relative_error ~actual ~expected] is [|actual − expected| / |expected|];
    [infinity] when [expected = 0.] and [actual <> 0.], else [0.]. *)
val relative_error : actual:float -> expected:float -> float
