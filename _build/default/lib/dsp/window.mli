(** Tapering windows for spectral analysis.

    The paper's detector runs on raw (rectangular) windows; the others are
    provided for the ablation benches that study spectral-leakage effects on
    the elasticity metric. *)

type kind =
  | Rectangular
  | Hann
  | Hamming
  | Blackman

(** [coefficients kind n] is the length-[n] window. *)
val coefficients : kind -> int -> float array

(** [apply kind xs] is a windowed copy of [xs]. *)
val apply : kind -> float array -> float array

(** [coherent_gain kind n] is the mean of the window coefficients — divide
    amplitudes by it to compare peak heights across window kinds. *)
val coherent_gain : kind -> int -> float
