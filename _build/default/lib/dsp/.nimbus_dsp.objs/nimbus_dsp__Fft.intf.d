lib/dsp/fft.mli: Cbuf
