lib/dsp/window.mli:
