lib/dsp/spectrum.ml: Array Fft Float Window
