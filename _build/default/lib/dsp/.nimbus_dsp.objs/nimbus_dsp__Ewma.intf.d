lib/dsp/ewma.mli:
