lib/dsp/goertzel.mli:
