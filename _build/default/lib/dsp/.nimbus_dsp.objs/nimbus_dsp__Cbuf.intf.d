lib/dsp/cbuf.mli:
