lib/dsp/stats.ml: Array Float
