lib/dsp/window.ml: Array
