lib/dsp/cbuf.ml: Array Float
