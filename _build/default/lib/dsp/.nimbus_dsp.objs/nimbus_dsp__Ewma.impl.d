lib/dsp/ewma.ml:
