lib/dsp/ring.ml: Array
