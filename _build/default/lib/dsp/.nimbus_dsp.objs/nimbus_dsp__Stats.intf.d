lib/dsp/stats.mli:
