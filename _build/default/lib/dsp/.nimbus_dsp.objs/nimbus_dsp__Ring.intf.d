lib/dsp/ring.mli:
