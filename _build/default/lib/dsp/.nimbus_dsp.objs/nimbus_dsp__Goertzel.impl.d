lib/dsp/goertzel.ml: Array
