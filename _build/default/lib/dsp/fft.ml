let is_power_of_two n = n > 0 && n land (n - 1) = 0

let next_power_of_two n =
  let rec go p = if p >= n then p else go (p * 2) in
  go 1

let pi = 4.0 *. atan 1.0

(* Bit-reversal permutation, then iterative butterflies.  Twiddles are
   recomputed per stage with the recurrence trick to stay allocation-free. *)
let radix2 ?(inverse = false) (b : Cbuf.t) =
  let n = Cbuf.length b in
  if not (is_power_of_two n) then
    invalid_arg "Fft.radix2: length must be a power of two";
  let re = b.Cbuf.re and im = b.Cbuf.im in
  (* bit reversal *)
  let j = ref 0 in
  for i = 0 to n - 2 do
    if i < !j then begin
      let tr = re.(i) and ti = im.(i) in
      re.(i) <- re.(!j);
      im.(i) <- im.(!j);
      re.(!j) <- tr;
      im.(!j) <- ti
    end;
    let m = ref (n lsr 1) in
    while !m >= 1 && !j land !m <> 0 do
      j := !j lxor !m;
      m := !m lsr 1
    done;
    j := !j lor !m
  done;
  (* butterflies *)
  let sign = if inverse then 1.0 else -1.0 in
  let len = ref 2 in
  while !len <= n do
    let half = !len / 2 in
    let theta = sign *. 2.0 *. pi /. float_of_int !len in
    let wstep_re = cos theta and wstep_im = sin theta in
    let i = ref 0 in
    while !i < n do
      let w_re = ref 1.0 and w_im = ref 0.0 in
      for k = !i to !i + half - 1 do
        let k2 = k + half in
        let tr = (re.(k2) *. !w_re) -. (im.(k2) *. !w_im) in
        let ti = (re.(k2) *. !w_im) +. (im.(k2) *. !w_re) in
        re.(k2) <- re.(k) -. tr;
        im.(k2) <- im.(k) -. ti;
        re.(k) <- re.(k) +. tr;
        im.(k) <- im.(k) +. ti;
        let nw_re = (!w_re *. wstep_re) -. (!w_im *. wstep_im) in
        let nw_im = (!w_re *. wstep_im) +. (!w_im *. wstep_re) in
        w_re := nw_re;
        w_im := nw_im
      done;
      i := !i + !len
    done;
    len := !len * 2
  done;
  if inverse then Cbuf.scale b (1.0 /. float_of_int n)

(* Bluestein re-expresses an N-point DFT as a convolution, evaluated with two
   power-of-two FFTs of size >= 2N-1.  Chirp: w(n) = exp(-i·pi·n²/N). *)
let bluestein ?(inverse = false) (b : Cbuf.t) =
  let n = Cbuf.length b in
  if n = 0 then invalid_arg "Fft.bluestein: empty buffer";
  if is_power_of_two n then begin
    let c = Cbuf.copy b in
    radix2 ~inverse c;
    c
  end
  else begin
    let sign = if inverse then 1.0 else -1.0 in
    let m = next_power_of_two ((2 * n) - 1) in
    let chirp_re = Array.make n 0. and chirp_im = Array.make n 0. in
    for i = 0 to n - 1 do
      (* i² mod 2n avoids precision loss for large i *)
      let q = float_of_int (i * i mod (2 * n)) in
      let theta = sign *. pi *. q /. float_of_int n in
      chirp_re.(i) <- cos theta;
      chirp_im.(i) <- sin theta
    done;
    let a = Cbuf.create m in
    for i = 0 to n - 1 do
      let xr = b.Cbuf.re.(i) and xi = b.Cbuf.im.(i) in
      Cbuf.set a i
        ((xr *. chirp_re.(i)) -. (xi *. chirp_im.(i)))
        ((xr *. chirp_im.(i)) +. (xi *. chirp_re.(i)))
    done;
    let c = Cbuf.create m in
    Cbuf.set c 0 chirp_re.(0) (-.chirp_im.(0));
    for i = 1 to n - 1 do
      Cbuf.set c i chirp_re.(i) (-.chirp_im.(i));
      Cbuf.set c (m - i) chirp_re.(i) (-.chirp_im.(i))
    done;
    radix2 a;
    radix2 c;
    for i = 0 to m - 1 do
      Cbuf.mul a i c.Cbuf.re.(i) c.Cbuf.im.(i)
    done;
    radix2 ~inverse:true a;
    let out = Cbuf.create n in
    for i = 0 to n - 1 do
      let ar = a.Cbuf.re.(i) and ai = a.Cbuf.im.(i) in
      Cbuf.set out i
        ((ar *. chirp_re.(i)) -. (ai *. chirp_im.(i)))
        ((ar *. chirp_im.(i)) +. (ai *. chirp_re.(i)))
    done;
    if inverse then Cbuf.scale out (1.0 /. float_of_int n);
    out
  end

let transform ?(inverse = false) b =
  if is_power_of_two (Cbuf.length b) then begin
    let c = Cbuf.copy b in
    radix2 ~inverse c;
    c
  end
  else bluestein ~inverse b

let dft ?(inverse = false) (b : Cbuf.t) =
  let n = Cbuf.length b in
  let sign = if inverse then 1.0 else -1.0 in
  let out = Cbuf.create n in
  for k = 0 to n - 1 do
    let sum_re = ref 0.0 and sum_im = ref 0.0 in
    for i = 0 to n - 1 do
      let theta = sign *. 2.0 *. pi *. float_of_int (k * i) /. float_of_int n in
      let wr = cos theta and wi = sin theta in
      sum_re := !sum_re +. ((b.Cbuf.re.(i) *. wr) -. (b.Cbuf.im.(i) *. wi));
      sum_im := !sum_im +. ((b.Cbuf.re.(i) *. wi) +. (b.Cbuf.im.(i) *. wr))
    done;
    Cbuf.set out k !sum_re !sum_im
  done;
  if inverse then Cbuf.scale out (1.0 /. float_of_int n);
  out

let real_amplitudes xs =
  let n = Array.length xs in
  if n = 0 then [||]
  else begin
    let spec = transform (Cbuf.of_real xs) in
    Array.init ((n / 2) + 1) (fun k -> Cbuf.magnitude spec k)
  end
