type t = {
  alpha : float;
  mutable avg : float;
  mutable initialized : bool;
}

let create ~alpha =
  if alpha <= 0. || alpha > 1. then invalid_arg "Ewma.create: alpha not in (0,1]";
  { alpha; avg = 0.; initialized = false }

let create_time_constant ~tau ~dt =
  if tau <= 0. || dt <= 0. then
    invalid_arg "Ewma.create_time_constant: non-positive tau or dt";
  create ~alpha:(1.0 -. exp (-.dt /. tau))

let create_cutoff ~freq ~dt =
  if freq <= 0. then invalid_arg "Ewma.create_cutoff: non-positive freq";
  let tau = 1.0 /. (2.0 *. 4.0 *. atan 1.0 *. freq) in
  create_time_constant ~tau ~dt

let update t x =
  if t.initialized then t.avg <- t.avg +. (t.alpha *. (x -. t.avg))
  else begin
    t.avg <- x;
    t.initialized <- true
  end;
  t.avg

let value t = t.avg

let initialized t = t.initialized

let reset t =
  t.avg <- 0.;
  t.initialized <- false
