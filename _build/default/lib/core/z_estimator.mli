(** Cross-traffic rate estimation (Eq. 1):

    [ẑ(t) = µ·S(t)/R(t) − S(t)]

    Valid while the bottleneck queue is non-empty and the router serves all
    traffic FIFO: the receive share [R/µ] then equals the arrival share
    [S/(S+z)]. *)

(** [estimate ~mu ~send_rate ~recv_rate] is ẑ in the same unit as the inputs,
    clamped to [[0, mu]]. Returns [nan] if either rate is [nan] or
    non-positive. @raise Invalid_argument if [mu <= 0.]. *)
val estimate : mu:float -> send_rate:float -> recv_rate:float -> float

(** Bottleneck-rate tracker in the style the paper's implementation uses:
    the maximum receive rate observed over a sliding window (BBR-like),
    robust to idle periods via a slow decay. *)
module Mu : sig
  type t

  (** [known rate] always reports [rate] — emulation experiments supply the
      true link rate (§8.2). *)
  val known : float -> t

  (** [estimator ()] learns µ from receive-rate samples.
      @param window seconds of history for the max filter (default 10) *)
  val estimator : ?window:float -> unit -> t

  (** [observe t ~now ~recv_rate] feeds a sample (no-op for [known]). *)
  val observe : t -> now:float -> recv_rate:float -> unit

  (** [current t ~now] is the µ estimate; [nan] if nothing observed yet. *)
  val current : t -> now:float -> float
end
