lib/core/z_estimator.ml: Float Queue
