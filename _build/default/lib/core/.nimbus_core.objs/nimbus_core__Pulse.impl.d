lib/core/pulse.ml: Float
