lib/core/pulse.mli:
