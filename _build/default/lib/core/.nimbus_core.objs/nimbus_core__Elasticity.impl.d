lib/core/elasticity.ml: Float Nimbus_dsp
