lib/core/nimbus.mli: Elasticity Nimbus_cc Nimbus_dsp Pulse Z_estimator
