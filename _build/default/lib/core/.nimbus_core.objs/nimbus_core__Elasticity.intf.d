lib/core/elasticity.mli: Nimbus_dsp
