lib/core/nimbus.ml: Elasticity Float Nimbus_cc Nimbus_dsp Nimbus_sim Pulse Z_estimator
