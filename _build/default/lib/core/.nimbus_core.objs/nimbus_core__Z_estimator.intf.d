lib/core/z_estimator.mli:
