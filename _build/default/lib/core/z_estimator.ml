let estimate ~mu ~send_rate ~recv_rate =
  if mu <= 0. then invalid_arg "Z_estimator.estimate: mu <= 0";
  if
    Float.is_nan send_rate || Float.is_nan recv_rate || send_rate <= 0.
    || recv_rate <= 0.
  then nan
  else begin
    let z = (mu *. send_rate /. recv_rate) -. send_rate in
    Float.max 0. (Float.min mu z)
  end

module Mu = struct
  type kind =
    | Known of float
    | Estimated of {
        window : float;
        samples : (float * float) Queue.t; (* (time, rate) *)
        mutable best : float;
      }

  type t = kind ref

  let known rate = ref (Known rate)

  let estimator ?(window = 10.) () =
    ref (Estimated { window; samples = Queue.create (); best = nan })

  let prune samples horizon =
    let continue = ref true in
    while !continue do
      match Queue.peek_opt samples with
      | Some (at, _) when at < horizon -> ignore (Queue.pop samples)
      | _ -> continue := false
    done

  let observe t ~now ~recv_rate =
    match !t with
    | Known _ -> ()
    | Estimated e ->
      if not (Float.is_nan recv_rate || recv_rate <= 0.) then begin
        Queue.push (now, recv_rate) e.samples;
        prune e.samples (now -. e.window);
        e.best <-
          Queue.fold (fun acc (_, r) -> Float.max acc r) neg_infinity e.samples
      end

  let current t ~now =
    match !t with
    | Known r -> r
    | Estimated e ->
      prune e.samples (now -. e.window);
      if Float.is_finite e.best then e.best else nan
end
