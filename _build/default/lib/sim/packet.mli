(** Packets as they traverse the bottleneck.

    A packet belongs to one flow, carries its payload size, and collects
    timestamps at each stage. ACKs are not materialised as packets on a
    reverse queue: the receiver leg is modelled as a pure delay (the paper's
    single-bottleneck network model, Fig. 2), so acknowledgements are
    scheduled callbacks carrying the metadata a real ACK would. *)

type t = {
  flow : int;              (* flow identifier *)
  seq : int;               (* per-flow sequence number *)
  size : int;              (* bytes on the wire *)
  mutable sent_at : float; (* handed to the network by the sender *)
  mutable enqueued_at : float;   (* arrival at the bottleneck queue *)
  mutable dequeued_at : float;   (* finished serialisation at the bottleneck *)
  retransmission : bool;
}

(** Conventional sizes, in bytes. *)
val default_data_size : int

val ack_size : int

(** [make ~flow ~seq ~size ~now ?retransmission ()] is a fresh packet with
    [sent_at = now] and unset downstream timestamps. *)
val make :
  flow:int -> seq:int -> size:int -> now:float -> ?retransmission:bool -> unit -> t

(** [queueing_delay p] is the time [p] spent at the bottleneck (enqueue to end
    of serialisation); [nan] before dequeue. *)
val queueing_delay : t -> float
