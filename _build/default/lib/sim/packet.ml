type t = {
  flow : int;
  seq : int;
  size : int;
  mutable sent_at : float;
  mutable enqueued_at : float;
  mutable dequeued_at : float;
  retransmission : bool;
}

let default_data_size = 1500

let ack_size = 40

let make ~flow ~seq ~size ~now ?(retransmission = false) () =
  { flow; seq; size; sent_at = now; enqueued_at = nan; dequeued_at = nan;
    retransmission }

let queueing_delay p =
  if Float.is_nan p.dequeued_at then nan else p.dequeued_at -. p.enqueued_at
