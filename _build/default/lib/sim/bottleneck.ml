type policer = {
  p_rate : float; (* bps *)
  p_burst : int;  (* bytes *)
  mutable tokens : float; (* bytes *)
  mutable last_refill : float;
}

type t = {
  engine : Engine.t;
  rate_bps : float;
  qdisc : Qdisc.t;
  random_loss : (float * Rng.t) option;
  policer : policer option;
  fifo : Packet.t Queue.t;
  sinks : (int, Packet.t -> unit) Hashtbl.t;
  mutable qlen : int;
  mutable busy : bool;
  mutable drops : int;
  drops_by_flow : (int, int) Hashtbl.t;
  delivered_by_flow : (int, int) Hashtbl.t;
  mutable busy_seconds : float;
}

let create engine ~rate_bps ~qdisc ?random_loss ?policer () =
  if rate_bps <= 0. then invalid_arg "Bottleneck.create: rate <= 0";
  let policer =
    Option.map
      (fun (rate, burst) ->
        { p_rate = rate; p_burst = burst; tokens = float_of_int burst;
          last_refill = Engine.now engine })
      policer
  in
  { engine; rate_bps; qdisc; random_loss; policer; fifo = Queue.create ();
    sinks = Hashtbl.create 16; qlen = 0; busy = false; drops = 0;
    drops_by_flow = Hashtbl.create 16; delivered_by_flow = Hashtbl.create 16;
    busy_seconds = 0. }

let set_sink t ~flow f = Hashtbl.replace t.sinks flow f

let bump tbl key n =
  let cur = Option.value ~default:0 (Hashtbl.find_opt tbl key) in
  Hashtbl.replace tbl key (cur + n)

let record_drop t (pkt : Packet.t) =
  t.drops <- t.drops + 1;
  bump t.drops_by_flow pkt.flow 1

let deliver t (pkt : Packet.t) =
  bump t.delivered_by_flow pkt.flow pkt.size;
  match Hashtbl.find_opt t.sinks pkt.flow with
  | Some f -> f pkt
  | None -> ()

let rec start_next t =
  match Queue.take_opt t.fifo with
  | None -> t.busy <- false
  | Some pkt ->
    t.busy <- true;
    let tx = float_of_int (pkt.size * 8) /. t.rate_bps in
    t.busy_seconds <- t.busy_seconds +. tx;
    Engine.schedule_in t.engine tx (fun () ->
        pkt.Packet.dequeued_at <- Engine.now t.engine;
        t.qlen <- t.qlen - pkt.size;
        deliver t pkt;
        start_next t)

let policer_admits t (pkt : Packet.t) =
  match t.policer with
  | None -> true
  | Some p ->
    let now = Engine.now t.engine in
    let refill = (now -. p.last_refill) *. p.p_rate /. 8. in
    p.tokens <- Float.min (float_of_int p.p_burst) (p.tokens +. refill);
    p.last_refill <- now;
    if p.tokens >= float_of_int pkt.size then begin
      p.tokens <- p.tokens -. float_of_int pkt.size;
      true
    end
    else false

let random_loss_admits t =
  match t.random_loss with
  | None -> true
  | Some (p, rng) -> not (Rng.bool rng ~p)

let enqueue t pkt =
  let now = Engine.now t.engine in
  if not (policer_admits t pkt) then record_drop t pkt
  else if not (random_loss_admits t) then record_drop t pkt
  else if Qdisc.admit t.qdisc ~now ~qlen_bytes:t.qlen ~pkt_size:pkt.Packet.size
  then begin
    pkt.Packet.enqueued_at <- now;
    t.qlen <- t.qlen + pkt.Packet.size;
    Queue.push pkt t.fifo;
    if not t.busy then start_next t
  end
  else record_drop t pkt

let rate_bps t = t.rate_bps

let qlen_bytes t = t.qlen

let queue_delay t = float_of_int (t.qlen * 8) /. t.rate_bps

let drops t = t.drops

let drops_for t ~flow =
  Option.value ~default:0 (Hashtbl.find_opt t.drops_by_flow flow)

let delivered_bytes t ~flow =
  Option.value ~default:0 (Hashtbl.find_opt t.delivered_by_flow flow)

let busy_seconds t = t.busy_seconds

let capacity_bytes t = Qdisc.capacity_bytes t.qdisc
