lib/sim/engine.mli:
