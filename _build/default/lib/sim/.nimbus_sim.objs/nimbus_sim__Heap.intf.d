lib/sim/heap.mli:
