lib/sim/bottleneck.mli: Engine Packet Qdisc Rng
