lib/sim/bottleneck.ml: Engine Float Hashtbl Option Packet Qdisc Queue Rng
