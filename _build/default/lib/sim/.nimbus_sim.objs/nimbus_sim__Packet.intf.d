lib/sim/packet.mli:
