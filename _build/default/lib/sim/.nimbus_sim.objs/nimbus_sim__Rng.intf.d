lib/sim/rng.mli:
