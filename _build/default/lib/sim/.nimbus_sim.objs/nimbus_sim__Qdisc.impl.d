lib/sim/qdisc.ml: Float Rng
