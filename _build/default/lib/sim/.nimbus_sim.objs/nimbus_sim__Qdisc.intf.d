lib/sim/qdisc.mli: Rng
