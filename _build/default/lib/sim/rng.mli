(** Deterministic pseudo-random streams (splitmix64).

    Every stochastic element of a simulation draws from a stream seeded by the
    experiment, so each table in the evaluation is reproducible bit-for-bit.
    [split] derives an independent stream, letting subsystems (flow arrivals,
    packet sizes, election coin flips, ...) consume randomness without
    perturbing each other. *)

type t

(** [create seed] starts a stream from an integer seed. *)
val create : int -> t

(** [split t] derives a new independent stream; advances [t]. *)
val split : t -> t

(** [bits t] is the next raw 64-bit output. *)
val bits : t -> int64

(** [int t bound] is uniform in [0, bound). @raise Invalid_argument if
    [bound <= 0]. *)
val int : t -> int -> int

(** [uniform t] is uniform in [0, 1). *)
val uniform : t -> float

(** [float t x] is uniform in [0, x). *)
val float : t -> float -> float

(** [range t ~lo ~hi] is uniform in [lo, hi). *)
val range : t -> lo:float -> hi:float -> float

(** [bool t ~p] is [true] with probability [p]. *)
val bool : t -> p:float -> bool

(** [exponential t ~mean] samples Exp with the given mean. *)
val exponential : t -> mean:float -> float

(** [normal t] is a standard normal deviate (Box–Muller). *)
val normal : t -> float

(** [lognormal t ~mu ~sigma] is [exp (mu + sigma·N(0,1))]. *)
val lognormal : t -> mu:float -> sigma:float -> float

(** [pareto t ~shape ~scale] samples a Pareto( shape ) with minimum [scale];
    heavy-tailed for [shape <= 2]. *)
val pareto : t -> shape:float -> scale:float -> float

(** [shuffle t a] permutes [a] in place (Fisher–Yates). *)
val shuffle : t -> 'a array -> unit
