type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let create seed = { state = mix (Int64.of_int seed) }

let bits t =
  t.state <- Int64.add t.state golden_gamma;
  mix t.state

let split t = { state = bits t }

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound <= 0";
  (* keep 62 bits so the conversion to OCaml's 63-bit int stays positive *)
  let r = Int64.to_int (Int64.shift_right_logical (bits t) 2) in
  r mod bound

(* 53 random mantissa bits -> [0, 1) *)
let uniform t =
  let r = Int64.shift_right_logical (bits t) 11 in
  Int64.to_float r *. 0x1.0p-53

let float t x = uniform t *. x

let range t ~lo ~hi = lo +. (uniform t *. (hi -. lo))

let bool t ~p = uniform t < p

let exponential t ~mean =
  if mean <= 0. then invalid_arg "Rng.exponential: mean <= 0";
  let u = 1.0 -. uniform t in
  -.mean *. log u

let normal t =
  let u1 = 1.0 -. uniform t in
  let u2 = uniform t in
  sqrt (-2.0 *. log u1) *. cos (2.0 *. 4.0 *. atan 1.0 *. u2)

let lognormal t ~mu ~sigma = exp (mu +. (sigma *. normal t))

let pareto t ~shape ~scale =
  if shape <= 0. || scale <= 0. then invalid_arg "Rng.pareto: non-positive parameter";
  let u = 1.0 -. uniform t in
  scale /. (u ** (1.0 /. shape))

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done
