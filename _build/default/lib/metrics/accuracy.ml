type t = {
  mutable tp : int;
  mutable tn : int;
  mutable fp : int;
  mutable fn : int;
}

let create () = { tp = 0; tn = 0; fp = 0; fn = 0 }

let record t ~predicted_elastic ~truth_elastic =
  match (predicted_elastic, truth_elastic) with
  | true, true -> t.tp <- t.tp + 1
  | false, false -> t.tn <- t.tn + 1
  | true, false -> t.fp <- t.fp + 1
  | false, true -> t.fn <- t.fn + 1

let samples t = t.tp + t.tn + t.fp + t.fn

let accuracy t =
  let n = samples t in
  if n = 0 then nan else float_of_int (t.tp + t.tn) /. float_of_int n

let true_positive_rate t =
  let n = t.tp + t.fn in
  if n = 0 then nan else float_of_int t.tp /. float_of_int n

let true_negative_rate t =
  let n = t.tn + t.fp in
  if n = 0 then nan else float_of_int t.tn /. float_of_int n
