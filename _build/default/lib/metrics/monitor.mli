(** Periodic probes that turn live simulation state into {!Series.t}. *)

(** [probe engine ~interval ?start ?until f] samples [f ()] every [interval]
    seconds into a fresh series. *)
val probe :
  Nimbus_sim.Engine.t ->
  interval:float ->
  ?start:float ->
  ?until:float ->
  (unit -> float) ->
  Series.t

(** [throughput engine ~interval ?start ?until counter] converts a cumulative
    byte counter into a bits-per-second series (delta per interval). *)
val throughput :
  Nimbus_sim.Engine.t ->
  interval:float ->
  ?start:float ->
  ?until:float ->
  (unit -> int) ->
  Series.t

(** [flow_throughput engine flow ~interval] — receiver goodput of one flow. *)
val flow_throughput :
  Nimbus_sim.Engine.t ->
  Nimbus_cc.Flow.t ->
  interval:float ->
  ?start:float ->
  ?until:float ->
  unit ->
  Series.t

(** [queue_delay engine bottleneck ~interval] — instantaneous bottleneck
    queueing delay in seconds. *)
val queue_delay :
  Nimbus_sim.Engine.t ->
  Nimbus_sim.Bottleneck.t ->
  interval:float ->
  ?start:float ->
  ?until:float ->
  unit ->
  Series.t

(** [flow_rtt engine flow ~interval] — the flow's latest RTT sample
    ([nan] before traffic). *)
val flow_rtt :
  Nimbus_sim.Engine.t ->
  Nimbus_cc.Flow.t ->
  interval:float ->
  ?start:float ->
  ?until:float ->
  unit ->
  Series.t
