let jain xs =
  let n = Array.length xs in
  if n = 0 then nan
  else begin
    let sum = Array.fold_left ( +. ) 0. xs in
    let sumsq = Array.fold_left (fun a x -> a +. (x *. x)) 0. xs in
    if sumsq = 0. then nan else sum *. sum /. (float_of_int n *. sumsq)
  end

let normalized_share ~achieved ~fair =
  if fair <= 0. then nan else achieved /. fair
