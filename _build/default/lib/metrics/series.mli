(** Append-only (time, value) series collected during a simulation run. *)

type t

val create : unit -> t

(** [add t ~time ~value]. *)
val add : t -> time:float -> value:float -> unit

val length : t -> int

(** [times t], [values t] — chronological copies. *)
val times : t -> float array

val values : t -> float array

(** [values_between t ~lo ~hi] — values with [lo <= time < hi]. *)
val values_between : t -> lo:float -> hi:float -> float array

(** [mean_between t ~lo ~hi] — [nan] when the window is empty. *)
val mean_between : t -> lo:float -> hi:float -> float

(** [iter t f] applies [f time value] in insertion order. *)
val iter : t -> (float -> float -> unit) -> unit

(** [last_value t] — [nan] when empty. *)
val last_value : t -> float
