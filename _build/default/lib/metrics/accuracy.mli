(** Classification-accuracy accounting: the fraction of decision samples
    where the detector's mode matches the ground truth (§8.2's headline
    metric). *)

type t

val create : unit -> t

(** [record t ~predicted_elastic ~truth_elastic] adds one sample. *)
val record : t -> predicted_elastic:bool -> truth_elastic:bool -> unit

(** [accuracy t] — [nan] before any sample. *)
val accuracy : t -> float

(** [samples t]. *)
val samples : t -> int

(** Per-class rates, for diagnosing asymmetric failures. [nan] when the
    class never occurred. *)
val true_positive_rate : t -> float

val true_negative_rate : t -> float
