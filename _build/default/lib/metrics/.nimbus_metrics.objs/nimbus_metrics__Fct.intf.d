lib/metrics/fct.mli:
