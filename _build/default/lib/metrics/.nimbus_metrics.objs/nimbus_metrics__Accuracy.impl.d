lib/metrics/accuracy.ml:
