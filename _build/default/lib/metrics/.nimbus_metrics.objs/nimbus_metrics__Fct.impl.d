lib/metrics/fct.ml: Array List Nimbus_dsp Printf
