lib/metrics/fairness.mli:
