lib/metrics/monitor.ml: Nimbus_cc Nimbus_sim Series
