lib/metrics/accuracy.mli:
