lib/metrics/monitor.mli: Nimbus_cc Nimbus_sim Series
