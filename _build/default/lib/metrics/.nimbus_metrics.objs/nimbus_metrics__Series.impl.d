lib/metrics/series.ml: Array Nimbus_dsp
