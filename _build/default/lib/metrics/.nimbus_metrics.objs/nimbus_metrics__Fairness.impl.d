lib/metrics/fairness.ml: Array
