lib/metrics/series.mli:
