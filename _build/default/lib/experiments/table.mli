(** Result tables: the textual analogue of the paper's figures. Every
    experiment returns one or more of these; the bench harness prints them. *)

type t = {
  title : string;
  header : string list;
  rows : string list list;
  notes : string list; (* shape targets, paper-vs-measured commentary *)
}

val make : title:string -> header:string list -> ?notes:string list ->
  string list list -> t

(** Cell formatting helpers. *)

val fmt_mbps : float -> string

val fmt_ms : float -> string

val fmt_float : ?digits:int -> float -> string

val fmt_pct : float -> string

(** [render t] pretty-prints with aligned columns. *)
val render : t -> string

(** [print t] renders to stdout. *)
val print : t -> unit

(** [to_csv t] — machine-readable dump for the CLI. *)
val to_csv : t -> string
