lib/experiments/exp_fig13.ml: Common List Nimbus_sim Nimbus_traffic Table
