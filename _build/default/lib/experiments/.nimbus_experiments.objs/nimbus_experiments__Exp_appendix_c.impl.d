lib/experiments/exp_appendix_c.ml: Common List Nimbus_cc Nimbus_sim Table
