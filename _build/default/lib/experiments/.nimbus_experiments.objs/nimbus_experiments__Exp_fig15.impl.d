lib/experiments/exp_fig15.ml: Common List Nimbus_cc Nimbus_metrics Nimbus_sim Nimbus_traffic Table
