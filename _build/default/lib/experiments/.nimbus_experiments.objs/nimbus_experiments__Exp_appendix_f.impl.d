lib/experiments/exp_appendix_f.ml: Array Common Float List Nimbus_cc Nimbus_core Nimbus_dsp Nimbus_sim Printf Table
