lib/experiments/exp_fig1.ml: Common List Nimbus_sim Nimbus_traffic Table
