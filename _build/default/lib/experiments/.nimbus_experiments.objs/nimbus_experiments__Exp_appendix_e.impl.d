lib/experiments/exp_appendix_e.ml: Common Float List Nimbus_cc Nimbus_metrics Nimbus_sim Nimbus_traffic Printf Table
