lib/experiments/table.ml: Buffer Float List Option Printf String
