lib/experiments/exp_fig12.ml: Array Common Nimbus_cc Nimbus_core Nimbus_dsp Nimbus_metrics Nimbus_sim Nimbus_traffic Table
