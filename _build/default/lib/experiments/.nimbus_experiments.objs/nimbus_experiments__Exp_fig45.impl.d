lib/experiments/exp_fig45.ml: Array Common Float List Nimbus_cc Nimbus_core Nimbus_dsp Nimbus_sim Nimbus_traffic Printf Table
