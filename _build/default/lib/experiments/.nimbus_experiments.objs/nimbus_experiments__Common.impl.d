lib/experiments/common.ml: Array Float List Nimbus_cc Nimbus_core Nimbus_dsp Nimbus_metrics Nimbus_sim
