lib/experiments/exp_fig16.ml: Array Common List Nimbus_cc Nimbus_core Nimbus_dsp Nimbus_metrics Nimbus_sim Printf Table
