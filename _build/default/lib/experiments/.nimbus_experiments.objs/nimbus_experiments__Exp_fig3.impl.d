lib/experiments/exp_fig3.ml: Common Nimbus_sim Nimbus_traffic Table
