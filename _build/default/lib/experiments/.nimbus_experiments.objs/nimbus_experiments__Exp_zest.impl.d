lib/experiments/exp_zest.ml: Array Common Float List Nimbus_cc Nimbus_core Nimbus_dsp Nimbus_sim Nimbus_traffic Table
