lib/experiments/exp_fig14.ml: Common List Nimbus_cc Nimbus_metrics Nimbus_sim Nimbus_traffic Table
