lib/experiments/exp_fig6.ml: Array Common Float List Nimbus_cc Nimbus_core Nimbus_dsp Nimbus_sim Nimbus_traffic Table
