lib/experiments/exp_fig11.ml: Common List Nimbus_sim Nimbus_traffic Printf Table
