lib/experiments/exp_ablation.ml: Array Common Float List Nimbus_cc Nimbus_core Nimbus_dsp Nimbus_metrics Nimbus_sim Nimbus_traffic Printf Table
