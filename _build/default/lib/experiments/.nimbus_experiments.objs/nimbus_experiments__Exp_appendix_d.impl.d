lib/experiments/exp_appendix_d.ml: Common List Nimbus_cc Nimbus_sim Nimbus_traffic Printf Table
