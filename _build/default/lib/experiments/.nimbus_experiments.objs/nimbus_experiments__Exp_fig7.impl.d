lib/experiments/exp_fig7.ml: Common List Nimbus_core Printf Table
