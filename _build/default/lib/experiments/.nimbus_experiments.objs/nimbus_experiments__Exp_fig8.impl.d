lib/experiments/exp_fig8.ml: Common Float List Nimbus_metrics Nimbus_sim Nimbus_traffic Printf Table
