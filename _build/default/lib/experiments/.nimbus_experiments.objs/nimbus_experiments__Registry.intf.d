lib/experiments/registry.mli: Common Table
