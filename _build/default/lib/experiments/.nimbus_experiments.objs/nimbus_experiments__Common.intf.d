lib/experiments/common.mli: Nimbus_cc Nimbus_core Nimbus_metrics Nimbus_sim
