lib/experiments/exp_wan.ml: Array Common Float List Nimbus_dsp Nimbus_metrics Nimbus_sim Nimbus_traffic Table
