lib/experiments/table.mli:
