lib/experiments/exp_internet_paths.ml: Array Common List Nimbus_dsp Nimbus_sim Nimbus_traffic Printf Table
