(** The experiment registry: every table and figure of the paper, mapped to
    a runnable reproduction. *)

type experiment = {
  id : string;
  title : string;
  run : Common.profile -> Table.t list;
}

(** [all] in presentation order. *)
val all : experiment list

(** [find id]. *)
val find : string -> experiment option

(** [ids]. *)
val ids : string list
