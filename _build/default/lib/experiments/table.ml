type t = {
  title : string;
  header : string list;
  rows : string list list;
  notes : string list;
}

let make ~title ~header ?(notes = []) rows = { title; header; rows; notes }

let fmt_mbps bps =
  if Float.is_nan bps then "-" else Printf.sprintf "%.1f" (bps /. 1e6)

let fmt_ms s = if Float.is_nan s then "-" else Printf.sprintf "%.1f" (s *. 1e3)

let fmt_float ?(digits = 2) x =
  if Float.is_nan x then "-" else Printf.sprintf "%.*f" digits x

let fmt_pct x =
  if Float.is_nan x then "-" else Printf.sprintf "%.0f%%" (100. *. x)

let render t =
  let all = t.header :: t.rows in
  let cols =
    List.fold_left (fun acc row -> max acc (List.length row)) 0 all
  in
  let width c =
    List.fold_left
      (fun acc row ->
        match List.nth_opt row c with
        | Some cell -> max acc (String.length cell)
        | None -> acc)
      0 all
  in
  let widths = List.init cols width in
  let render_row row =
    String.concat "  "
      (List.mapi
         (fun c w ->
           let cell = Option.value ~default:"" (List.nth_opt row c) in
           cell ^ String.make (max 0 (w - String.length cell)) ' ')
         widths)
  in
  let sep =
    String.concat "  " (List.map (fun w -> String.make w '-') widths)
  in
  let buf = Buffer.create 256 in
  Buffer.add_string buf ("== " ^ t.title ^ " ==\n");
  Buffer.add_string buf (render_row t.header ^ "\n");
  Buffer.add_string buf (sep ^ "\n");
  List.iter (fun r -> Buffer.add_string buf (render_row r ^ "\n")) t.rows;
  List.iter (fun n -> Buffer.add_string buf ("  note: " ^ n ^ "\n")) t.notes;
  Buffer.contents buf

let print t = print_string (render t)

let to_csv t =
  let escape cell =
    if String.contains cell ',' || String.contains cell '"' then
      "\"" ^ String.concat "\"\"" (String.split_on_char '"' cell) ^ "\""
    else cell
  in
  let line row = String.concat "," (List.map escape row) in
  String.concat "\n" (line t.header :: List.map line t.rows) ^ "\n"
