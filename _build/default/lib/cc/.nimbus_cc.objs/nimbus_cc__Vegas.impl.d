lib/cc/vegas.ml: Cc_types Float
