lib/cc/flow.ml: Array Cc_types Float Hashtbl List Nimbus_dsp Nimbus_sim Queue
