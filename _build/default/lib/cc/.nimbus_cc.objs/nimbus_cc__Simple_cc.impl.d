lib/cc/simple_cc.ml: Cc_types
