lib/cc/simple_cc.mli: Cc_types
