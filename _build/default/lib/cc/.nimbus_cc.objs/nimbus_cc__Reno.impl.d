lib/cc/reno.ml: Cc_types Float
