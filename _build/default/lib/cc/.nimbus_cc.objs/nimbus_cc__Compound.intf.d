lib/cc/compound.mli: Cc_types
