lib/cc/basic_delay.mli: Cc_types
