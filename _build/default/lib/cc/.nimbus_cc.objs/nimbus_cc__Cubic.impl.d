lib/cc/cubic.ml: Cc_types Float Option
