lib/cc/copa.ml: Cc_types Float Queue
