lib/cc/vegas.mli: Cc_types
