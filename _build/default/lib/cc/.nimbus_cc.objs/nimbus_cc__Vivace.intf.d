lib/cc/vivace.mli: Cc_types
