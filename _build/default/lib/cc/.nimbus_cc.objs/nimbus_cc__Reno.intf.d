lib/cc/reno.mli: Cc_types
