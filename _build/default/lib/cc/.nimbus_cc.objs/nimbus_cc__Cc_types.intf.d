lib/cc/cc_types.mli:
