lib/cc/compound.ml: Cc_types Float
