lib/cc/bbr.mli: Cc_types
