lib/cc/basic_delay.ml: Cc_types Float
