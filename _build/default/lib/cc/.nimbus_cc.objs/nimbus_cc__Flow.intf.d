lib/cc/flow.mli: Cc_types Nimbus_sim
