lib/cc/bbr.ml: Array Cc_types Float Queue
