type ack = {
  now : float;
  seq : int;
  bytes : int;
  rtt : float;
  min_rtt : float;
  srtt : float;
  inflight_bytes : int;
  delivered_bytes : int;
}

type loss = {
  now : float;
  seq : int;
  bytes : int;
  inflight_bytes : int;
  kind : [ `Dupack | `Timeout ];
}

type tick = {
  now : float;
  send_rate : float;
  recv_rate : float;
  rtt : float;
  srtt : float;
  min_rtt : float;
  inflight_bytes : int;
  delivered_bytes : int;
  lost_packets : int;
}

type t = {
  name : string;
  on_ack : ack -> unit;
  on_loss : loss -> unit;
  on_tick : (tick -> unit) option;
  cwnd_bytes : unit -> float;
  pacing_rate_bps : unit -> float option;
}

let unconstrained ~name =
  { name;
    on_ack = (fun _ -> ());
    on_loss = (fun _ -> ());
    on_tick = None;
    cwnd_bytes = (fun () -> infinity);
    pacing_rate_bps = (fun () -> None) }
