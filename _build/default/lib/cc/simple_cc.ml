let const_rate ~rate_bps =
  if rate_bps <= 0. then invalid_arg "Simple_cc.const_rate: rate <= 0";
  { Cc_types.name = "cbr";
    on_ack = (fun _ -> ());
    on_loss = (fun _ -> ());
    on_tick = None;
    cwnd_bytes = (fun () -> infinity);
    pacing_rate_bps = (fun () -> Some rate_bps) }

let fixed_window ?(mss = 1500) ~segments () =
  if segments <= 0 then invalid_arg "Simple_cc.fixed_window: segments <= 0";
  let cwnd = float_of_int (mss * segments) in
  { Cc_types.name = "fixed-window";
    on_ack = (fun _ -> ());
    on_loss = (fun _ -> ());
    on_tick = None;
    cwnd_bytes = (fun () -> cwnd);
    pacing_rate_bps = (fun () -> None) }
