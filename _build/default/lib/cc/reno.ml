type t = {
  mss : float;
  mutable cwnd : float;     (* bytes *)
  mutable ssthresh : float; (* bytes *)
  mutable recovery_until : float;
  mutable srtt : float;
}

let create ?(mss = 1500) ?(initial_cwnd = 10) () =
  let mssf = float_of_int mss in
  { mss = mssf; cwnd = mssf *. float_of_int initial_cwnd;
    ssthresh = infinity; recovery_until = neg_infinity; srtt = 0.1 }

let cwnd_bytes t = t.cwnd

let reset_cwnd t bytes =
  t.cwnd <- Float.max (2. *. t.mss) bytes;
  t.ssthresh <- t.cwnd

let on_ack t (a : Cc_types.ack) =
  t.srtt <- a.srtt;
  if t.cwnd < t.ssthresh then t.cwnd <- t.cwnd +. float_of_int a.bytes
  else t.cwnd <- t.cwnd +. (t.mss *. float_of_int a.bytes /. t.cwnd)

let on_loss t (l : Cc_types.loss) =
  match l.kind with
  | `Timeout ->
    t.ssthresh <- Float.max (t.cwnd /. 2.) (2. *. t.mss);
    t.cwnd <- 2. *. t.mss;
    t.recovery_until <- l.now +. t.srtt
  | `Dupack ->
    if l.now > t.recovery_until then begin
      t.ssthresh <- Float.max (t.cwnd /. 2.) (2. *. t.mss);
      t.cwnd <- t.ssthresh;
      t.recovery_until <- l.now +. t.srtt
    end

let cc t =
  { Cc_types.name = "reno";
    on_ack = on_ack t;
    on_loss = on_loss t;
    on_tick = None;
    cwnd_bytes = (fun () -> t.cwnd);
    pacing_rate_bps = (fun () -> None) }

let make ?mss ?initial_cwnd () = cc (create ?mss ?initial_cwnd ())
