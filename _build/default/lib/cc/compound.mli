(** Compound TCP (Tan et al.): the congestion window is the sum of a
    loss-based window (Reno behaviour) and a delay-based window that grows
    polynomially while queueing delay is low and shrinks as delay builds.
    Used as a baseline in the paper's Fig. 8 walkthrough. *)

val make : ?mss:int -> unit -> Cc_types.t
