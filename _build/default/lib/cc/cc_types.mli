(** The interface between the flow engine and congestion-control algorithms.

    An algorithm is a record of closures over its private state. The engine
    feeds it per-ACK and per-loss events plus a 10 ms tick carrying rate
    estimates (mirroring the CCP reporting loop the paper's implementation
    uses), and reads back a congestion window and an optional pacing rate. *)

(** Event delivered for every acknowledged packet. *)
type ack = {
  now : float;
  seq : int;            (* sequence number of the acked packet *)
  bytes : int;          (* payload bytes acknowledged *)
  rtt : float;          (* sample from this packet *)
  min_rtt : float;      (* minimum observed so far *)
  srtt : float;         (* smoothed RTT *)
  inflight_bytes : int; (* after this ack *)
  delivered_bytes : int; (* cumulative *)
}

(** Loss signal. [`Dupack] approximates fast retransmit; [`Timeout] is an RTO
    where the whole window was declared lost. *)
type loss = {
  now : float;
  seq : int;
  bytes : int;
  inflight_bytes : int;
  kind : [ `Dupack | `Timeout ];
}

(** Periodic report. [send_rate]/[recv_rate] are S(t)/R(t) of Eq. 2: both
    measured over the same trailing window of acknowledged packets, in bits
    per second; [nan] until enough packets have been acknowledged. *)
type tick = {
  now : float;
  send_rate : float;
  recv_rate : float;
  rtt : float;     (* latest sample; nan before first ack *)
  srtt : float;
  min_rtt : float;
  inflight_bytes : int;
  delivered_bytes : int;
  lost_packets : int; (* cumulative *)
}

type t = {
  name : string;
  on_ack : ack -> unit;
  on_loss : loss -> unit;
  on_tick : (tick -> unit) option;
  cwnd_bytes : unit -> float;
      (** current window limit, in bytes; [infinity] for purely rate-paced
          algorithms *)
  pacing_rate_bps : unit -> float option;
      (** [Some r] paces transmissions at [r] bits/s; [None] relies on pure
          ACK clocking against the window *)
}

(** A controller that never restricts sending; used by raw traffic sources. *)
val unconstrained : name:string -> t
