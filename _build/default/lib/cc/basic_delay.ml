type t = {
  mutable mu : float;
  alpha : float;
  beta : float;
  delay_target : float;
  mutable rate : float; (* bps *)
  mutable srtt : float;
}

let create ~mu ?(alpha = 0.8) ?(beta = 0.5) ?(delay_target = 0.0125)
    ?initial_rate_bps () =
  if mu <= 0. then invalid_arg "Basic_delay.create: mu <= 0";
  let initial = match initial_rate_bps with Some r -> r | None -> mu /. 10. in
  { mu; alpha; beta; delay_target; rate = initial; srtt = 0.1 }

let rate_bps t = t.rate

let set_mu t mu = if mu > 0. then t.mu <- mu

let set_rate t r = t.rate <- Float.max 50_000. (Float.min (1.2 *. t.mu) r)

let update t (tk : Cc_types.tick) =
  if not (Float.is_nan tk.srtt) then t.srtt <- tk.srtt;
  if not (Float.is_nan tk.send_rate || Float.is_nan tk.recv_rate) then begin
    let s = tk.send_rate and r = Float.max tk.recv_rate 1e3 in
    let z = Float.max 0. ((t.mu *. s /. r) -. s) in
    let x = tk.rtt and x_min = tk.min_rtt in
    if not (Float.is_nan x || Float.is_nan x_min) then begin
      let spare = t.mu -. s -. z in
      let rate =
        s
        +. (t.alpha *. spare)
        +. (t.beta *. t.mu /. x *. (x_min +. t.delay_target -. x))
      in
      set_rate t rate
    end
  end

let cc t =
  { Cc_types.name = "basicdelay";
    on_ack = (fun _ -> ());
    on_loss = (fun _ -> ());
    on_tick = Some (update t);
    cwnd_bytes = (fun () -> Float.max (4. *. 1500.) (2. *. t.rate *. t.srtt /. 8.));
    pacing_rate_bps = (fun () -> Some t.rate) }

let make ~mu ?alpha ?beta ?delay_target ?initial_rate_bps () =
  cc (create ~mu ?alpha ?beta ?delay_target ?initial_rate_bps ())
