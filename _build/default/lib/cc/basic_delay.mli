(** BasicDelay, the paper's delay-controlling rule (Eq. 4):

    [rate ← S + α·(µ − S − z) + (β·µ/x)·(x_min + d_t − x)]

    where [S] is the measured send rate, [z = µ·S/R − S] the cross-traffic
    estimate, [x] the current RTT, [x_min] the propagation RTT, and [d_t] a
    target queueing delay that keeps the bottleneck queue from emptying (the
    ẑ estimator needs a busy link). Rate-paced, window-capped at 2·rate·RTT.

    Usable standalone (the "Nimbus delay" scheme of Appendix A) and as
    Nimbus's default delay-mode algorithm. *)

type t

(** @param mu bottleneck link rate, bits/s
    @param alpha spare-capacity step (default 0.8)
    @param beta delay-correction gain (default 0.5)
    @param delay_target d_t, seconds (default 0.0125)
    @param initial_rate_bps default µ/10 *)
val create :
  mu:float ->
  ?alpha:float ->
  ?beta:float ->
  ?delay_target:float ->
  ?initial_rate_bps:float ->
  unit ->
  t

val cc : t -> Cc_types.t

(** [rate_bps t] is the current controlled rate. *)
val rate_bps : t -> float

(** [set_rate t r] forces the rate (mode-switch initialisation). *)
val set_rate : t -> float -> unit

(** [set_mu t mu] updates the link-rate estimate the rule uses — needed when
    µ is learned online rather than configured. *)
val set_mu : t -> float -> unit

(** [update t tick] applies Eq. 4 given a flow tick; exposed so Nimbus can
    drive it directly while owning the pacing. *)
val update : t -> Cc_types.tick -> unit

val make :
  mu:float ->
  ?alpha:float ->
  ?beta:float ->
  ?delay_target:float ->
  ?initial_rate_bps:float ->
  unit ->
  Cc_types.t
