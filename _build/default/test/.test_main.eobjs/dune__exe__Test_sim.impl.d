test/test_sim.ml: Alcotest Bottleneck Engine Float Heap List Nimbus_sim Packet QCheck QCheck_alcotest Qdisc Rng
