test/test_dsp.ml: Alcotest Array Cbuf Ewma Fft Float Gen Goertzel List Nimbus_dsp Nimbus_sim QCheck QCheck_alcotest Ring Spectrum Stats Window
