test/test_experiments.ml: Alcotest List Nimbus_cc Nimbus_experiments Nimbus_sim String
