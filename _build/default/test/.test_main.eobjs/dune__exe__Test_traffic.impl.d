test/test_traffic.ml: Alcotest Array Float List Nimbus_sim Nimbus_traffic Schedule Source Video Wan
