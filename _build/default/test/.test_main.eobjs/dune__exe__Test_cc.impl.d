test/test_cc.ml: Alcotest Basic_delay Bbr Cc_types Compound Copa Cubic Float Flow Nimbus_cc Nimbus_metrics Nimbus_sim Nimbus_traffic Option Reno Simple_cc Vegas Vivace
