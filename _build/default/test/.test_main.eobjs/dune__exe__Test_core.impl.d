test/test_core.ml: Alcotest Elasticity Float Fmt List Nimbus Nimbus_cc Nimbus_core Nimbus_dsp Nimbus_sim Nimbus_traffic Pulse QCheck QCheck_alcotest Z_estimator
