test/test_metrics.ml: Accuracy Alcotest Array Fairness Fct Float Gen List Monitor Nimbus_metrics Nimbus_sim QCheck QCheck_alcotest Series
