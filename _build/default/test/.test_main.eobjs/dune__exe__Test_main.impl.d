test/test_main.ml: Alcotest Test_cc Test_core Test_dsp Test_experiments Test_metrics Test_sim Test_traffic
